"""Physical database configurations.

A configuration is a set of indexes and materialized views assumed to
exist when the what-if optimizer costs a query (the ``C`` in
``Cost(q, C)``).  Configurations are hashable and order-independent so
the optimizer can cache costs per (query, configuration) pair.

The *base configuration* of a tuning session (Section 6.1 of the paper)
contains the structures present in every candidate; costs in the base
configuration upper-bound SELECT costs in any candidate, which is what
the cost-bounding machinery in :mod:`repro.bounds.cost_bounds` exploits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..catalog.schema import Schema
from ..queries.ast import Query, QueryType
from .structures import Index, MaterializedView

__all__ = ["Configuration", "base_configuration"]

#: A hashable projection of a configuration onto one query: the frozenset
#: of indexes and the frozenset of views that can influence the query's
#: optimizer cost.  Two configurations with equal fingerprints for a query
#: are guaranteed to cost it identically.
Fingerprint = Tuple[FrozenSet[Index], FrozenSet[MaterializedView]]


@lru_cache(maxsize=None)
def _select_relevance(
    query: Query,
) -> Tuple[Tuple[str, FrozenSet[str], FrozenSet[str]], ...]:
    """Per-table ``(table, seekable-columns, needed-columns)`` of a query.

    An index can influence a SELECT plan only by *seeking* (its leading
    key column carries a filter, or equals a join column, enabling
    index-nested-loop and merge joins) or by *covering* (its leaf level
    contains every referenced column of the table).  These column sets
    are pure query structure, so they are computed once per query.
    """
    needed_by_table: Dict[str, set] = {}
    for ref in query.referenced_columns():
        needed_by_table.setdefault(ref.table, set()).add(ref.column)
    out = []
    for table in query.tables:
        seekable = {
            f.column.column for f in query.filters
            if f.column.table == table
        }
        for jp in query.join_predicates:
            if jp.left.table == table:
                seekable.add(jp.left.column)
            if jp.right.table == table:
                seekable.add(jp.right.column)
        out.append((
            table,
            frozenset(seekable),
            frozenset(needed_by_table.get(table, ())),
        ))
    return tuple(out)


@lru_cache(maxsize=None)
def _view_matches(view: MaterializedView, query: Query) -> bool:
    return view.matches_select(query)


@lru_cache(maxsize=None)
def _template_key(query: Query) -> Tuple:
    return query.template_key()


class Configuration:
    """An immutable set of physical design structures.

    Parameters
    ----------
    indexes:
        The indexes present in this configuration.
    views:
        The materialized views present in this configuration.
    name:
        Optional label used in reports ("C1", "base", ...).
    """

    __slots__ = ("_indexes", "_views", "name", "_by_table", "_hash",
                 "_fp_memo", "_fp_tmpl")

    def __init__(
        self,
        indexes: Iterable[Index] = (),
        views: Iterable[MaterializedView] = (),
        name: Optional[str] = None,
    ) -> None:
        self._indexes: FrozenSet[Index] = frozenset(indexes)
        self._views: FrozenSet[MaterializedView] = frozenset(views)
        self.name = name if name is not None else self._default_name()
        by_table: Dict[str, List[Index]] = {}
        for ix in sorted(self._indexes):
            by_table.setdefault(ix.table, []).append(ix)
        self._by_table = by_table
        self._hash = hash((self._indexes, self._views))
        self._fp_memo: Dict[Query, Fingerprint] = {}
        self._fp_tmpl: Dict[Tuple, Fingerprint] = {}

    def _default_name(self) -> str:
        return f"cfg_{len(self._indexes)}ix_{len(self._views)}mv"

    # ------------------------------------------------------------------
    # contents
    # ------------------------------------------------------------------
    @property
    def indexes(self) -> FrozenSet[Index]:
        """All indexes in the configuration."""
        return self._indexes

    @property
    def views(self) -> FrozenSet[MaterializedView]:
        """All materialized views in the configuration."""
        return self._views

    def indexes_on(self, table: str) -> List[Index]:
        """Indexes on ``table`` in deterministic order."""
        return list(self._by_table.get(table, ()))

    @property
    def structure_count(self) -> int:
        """Total number of structures (indexes + views)."""
        return len(self._indexes) + len(self._views)

    def __contains__(self, structure: object) -> bool:
        return structure in self._indexes or structure in self._views

    def __iter__(self) -> Iterator[object]:
        yield from sorted(self._indexes)
        yield from sorted(self._views, key=lambda v: v.name)

    # ------------------------------------------------------------------
    # set algebra (used to measure configuration overlap, Section 7)
    # ------------------------------------------------------------------
    def union(self, other: "Configuration", name: Optional[str] = None
              ) -> "Configuration":
        """Configuration containing the structures of both inputs."""
        return Configuration(
            self._indexes | other._indexes,
            self._views | other._views,
            name=name,
        )

    def intersection(self, other: "Configuration",
                     name: Optional[str] = None) -> "Configuration":
        """Configuration containing the shared structures."""
        return Configuration(
            self._indexes & other._indexes,
            self._views & other._views,
            name=name,
        )

    def with_structures(
        self,
        indexes: Iterable[Index] = (),
        views: Iterable[MaterializedView] = (),
        name: Optional[str] = None,
    ) -> "Configuration":
        """A new configuration with extra structures added."""
        return Configuration(
            self._indexes | frozenset(indexes),
            self._views | frozenset(views),
            name=name,
        )

    def overlap_fraction(self, other: "Configuration") -> float:
        """Jaccard similarity of the two structure sets.

        Section 7 distinguishes configuration pairs that "share a
        significant number of design structures" (high covariance, where
        Delta Sampling shines) from pairs with "little overlap".
        """
        mine = self._indexes | {("v", v.name) for v in self._views}
        theirs = other._indexes | {("v", v.name) for v in other._views}
        union = mine | theirs
        if not union:
            return 1.0
        return len(mine & theirs) / len(union)

    # ------------------------------------------------------------------
    # query-relevant fingerprinting (cache-key projection)
    # ------------------------------------------------------------------
    def fingerprint(self, query: Query) -> Fingerprint:
        """Project the configuration onto the structures ``query`` can see.

        The what-if cost of a query depends only on the indexes plan
        search can actually use — those that can seek (leading key
        column filtered or joined) or cover the query's columns on
        their table, plus, for DML, those the statement must maintain —
        and on the views that can match (SELECT) or require maintenance
        (DML).  Two configurations with
        equal fingerprints therefore cost the query identically, which
        is what lets :class:`~repro.optimizer.whatif.WhatIfOptimizer`
        share cached costs across configurations differing only in
        irrelevant structures.

        Results are memoized per query (configurations are immutable).
        Because relevance is pure template structure — constants never
        decide whether an index can seek/cover or a view can match —
        queries sharing a template share one computed fingerprint.
        """
        fp = self._fp_memo.get(query)
        if fp is None:
            tmpl = _template_key(query)
            fp = self._fp_tmpl.get(tmpl)
            if fp is None:
                fp = self._compute_fingerprint(query)
                self._fp_tmpl[tmpl] = fp
            self._fp_memo[query] = fp
        return fp

    def _compute_fingerprint(self, query: Query) -> Fingerprint:
        if query.qtype == QueryType.SELECT:
            views = frozenset(
                v for v in self._views if _view_matches(v, query)
            )
            relevant: List[Index] = []
            for table, seekable, needed in _select_relevance(query):
                for ix in self._by_table.get(table, ()):
                    # Keep exactly the indexes plan search can use: a
                    # seek/join on the leading key, or a covering scan
                    # (an empty needed set is covered by any index).
                    if (
                        ix.key_columns[0] in seekable
                        or needed <= ix.column_set
                    ):
                        relevant.append(ix)
            return (frozenset(relevant), views)

        # DML: every view joining the target table must be refreshed.
        target = query.tables[0]
        views = frozenset(
            v for v in self._views if target in v.table_set
        )
        table_indexes = self._by_table.get(target, ())
        if query.qtype in (QueryType.DELETE, QueryType.INSERT):
            # DELETE/INSERT maintain every index on the table.
            return (frozenset(table_indexes), views)
        # UPDATE: indexes needing maintenance (containing a SET column)
        # plus those usable by the row-locating SELECT part, whose
        # needed columns are the statement's referenced columns.
        modified = {ref.column for ref in query.set_columns}
        filter_cols = {f.column.column for f in query.filters}
        needed = frozenset(
            ref.column for ref in query.referenced_columns()
            if ref.table == target
        )
        relevant = [
            ix for ix in table_indexes
            if modified & ix.column_set
            or ix.key_columns[0] in filter_cols
            or needed <= ix.column_set
        ]
        return (frozenset(relevant), views)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def storage_bytes(self, schema: Schema, page_bytes: int = 8192) -> int:
        """Estimated storage footprint of all structures.

        Views are sized pessimistically as if they retained one row per
        row of their largest base table (refined by the optimizer's view
        cardinality estimate where available).
        """
        total = sum(
            ix.storage_bytes(schema, page_bytes) for ix in self._indexes
        )
        for view in self._views:
            largest = max(
                schema.table(t).row_count for t in view.tables
            )
            total += max(1, largest) * 24
        return total

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._indexes == other._indexes and self._views == other._views

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> Tuple:
        # The fingerprint memo is a per-process cache; rebuild lazily.
        return (self._indexes, self._views, self.name)

    def __setstate__(self, state: Tuple) -> None:
        indexes, views, name = state
        self.__init__(indexes, views, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Configuration({self.name!r}, indexes={len(self._indexes)}, "
            f"views={len(self._views)})"
        )


def base_configuration(
    configurations: Iterable[Configuration], name: str = "base"
) -> Configuration:
    """The base configuration of a candidate set (Section 6.1).

    Contains exactly the structures present in *every* candidate; the
    optimizer-estimated cost of a SELECT query in the base configuration
    upper-bounds its cost in any candidate (assuming a well-behaved
    optimizer), which is how SELECT cost intervals are derived.
    """
    configurations = list(configurations)
    if not configurations:
        return Configuration(name=name)
    shared = configurations[0]
    for cfg in configurations[1:]:
        shared = shared.intersection(cfg)
    return Configuration(shared.indexes, shared.views, name=name)
