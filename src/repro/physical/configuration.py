"""Physical database configurations.

A configuration is a set of indexes and materialized views assumed to
exist when the what-if optimizer costs a query (the ``C`` in
``Cost(q, C)``).  Configurations are hashable and order-independent so
the optimizer can cache costs per (query, configuration) pair.

The *base configuration* of a tuning session (Section 6.1 of the paper)
contains the structures present in every candidate; costs in the base
configuration upper-bound SELECT costs in any candidate, which is what
the cost-bounding machinery in :mod:`repro.bounds.cost_bounds` exploits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..catalog.schema import Schema
from .structures import Index, MaterializedView

__all__ = ["Configuration", "base_configuration"]


class Configuration:
    """An immutable set of physical design structures.

    Parameters
    ----------
    indexes:
        The indexes present in this configuration.
    views:
        The materialized views present in this configuration.
    name:
        Optional label used in reports ("C1", "base", ...).
    """

    __slots__ = ("_indexes", "_views", "name", "_by_table", "_hash")

    def __init__(
        self,
        indexes: Iterable[Index] = (),
        views: Iterable[MaterializedView] = (),
        name: Optional[str] = None,
    ) -> None:
        self._indexes: FrozenSet[Index] = frozenset(indexes)
        self._views: FrozenSet[MaterializedView] = frozenset(views)
        self.name = name if name is not None else self._default_name()
        by_table: Dict[str, List[Index]] = {}
        for ix in sorted(self._indexes):
            by_table.setdefault(ix.table, []).append(ix)
        self._by_table = by_table
        self._hash = hash((self._indexes, self._views))

    def _default_name(self) -> str:
        return f"cfg_{len(self._indexes)}ix_{len(self._views)}mv"

    # ------------------------------------------------------------------
    # contents
    # ------------------------------------------------------------------
    @property
    def indexes(self) -> FrozenSet[Index]:
        """All indexes in the configuration."""
        return self._indexes

    @property
    def views(self) -> FrozenSet[MaterializedView]:
        """All materialized views in the configuration."""
        return self._views

    def indexes_on(self, table: str) -> List[Index]:
        """Indexes on ``table`` in deterministic order."""
        return list(self._by_table.get(table, ()))

    @property
    def structure_count(self) -> int:
        """Total number of structures (indexes + views)."""
        return len(self._indexes) + len(self._views)

    def __contains__(self, structure: object) -> bool:
        return structure in self._indexes or structure in self._views

    def __iter__(self) -> Iterator[object]:
        yield from sorted(self._indexes)
        yield from sorted(self._views, key=lambda v: v.name)

    # ------------------------------------------------------------------
    # set algebra (used to measure configuration overlap, Section 7)
    # ------------------------------------------------------------------
    def union(self, other: "Configuration", name: Optional[str] = None
              ) -> "Configuration":
        """Configuration containing the structures of both inputs."""
        return Configuration(
            self._indexes | other._indexes,
            self._views | other._views,
            name=name,
        )

    def intersection(self, other: "Configuration",
                     name: Optional[str] = None) -> "Configuration":
        """Configuration containing the shared structures."""
        return Configuration(
            self._indexes & other._indexes,
            self._views & other._views,
            name=name,
        )

    def with_structures(
        self,
        indexes: Iterable[Index] = (),
        views: Iterable[MaterializedView] = (),
        name: Optional[str] = None,
    ) -> "Configuration":
        """A new configuration with extra structures added."""
        return Configuration(
            self._indexes | frozenset(indexes),
            self._views | frozenset(views),
            name=name,
        )

    def overlap_fraction(self, other: "Configuration") -> float:
        """Jaccard similarity of the two structure sets.

        Section 7 distinguishes configuration pairs that "share a
        significant number of design structures" (high covariance, where
        Delta Sampling shines) from pairs with "little overlap".
        """
        mine = self._indexes | {("v", v.name) for v in self._views}
        theirs = other._indexes | {("v", v.name) for v in other._views}
        union = mine | theirs
        if not union:
            return 1.0
        return len(mine & theirs) / len(union)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def storage_bytes(self, schema: Schema, page_bytes: int = 8192) -> int:
        """Estimated storage footprint of all structures.

        Views are sized pessimistically as if they retained one row per
        row of their largest base table (refined by the optimizer's view
        cardinality estimate where available).
        """
        total = sum(
            ix.storage_bytes(schema, page_bytes) for ix in self._indexes
        )
        for view in self._views:
            largest = max(
                schema.table(t).row_count for t in view.tables
            )
            total += max(1, largest) * 24
        return total

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._indexes == other._indexes and self._views == other._views

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Configuration({self.name!r}, indexes={len(self._indexes)}, "
            f"views={len(self._views)})"
        )


def base_configuration(
    configurations: Iterable[Configuration], name: str = "base"
) -> Configuration:
    """The base configuration of a candidate set (Section 6.1).

    Contains exactly the structures present in *every* candidate; the
    optimizer-estimated cost of a SELECT query in the base configuration
    upper-bounds its cost in any candidate (assuming a well-behaved
    optimizer), which is how SELECT cost intervals are derived.
    """
    configurations = list(configurations)
    if not configurations:
        return Configuration(name=name)
    shared = configurations[0]
    for cfg in configurations[1:]:
        shared = shared.intersection(cfg)
    return Configuration(shared.indexes, shared.views, name=name)
