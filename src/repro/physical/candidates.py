"""Candidate generation and configuration enumeration.

The paper's primitive compares configurations "collected from a
commercial physical design tool" (Section 7.2).  This module plays that
tool's enumeration role: it derives candidate indexes and views from a
workload via the optimizer's instrumentation, then assembles candidate
configurations as weighted subsets of the pool.

Structures suggested by many queries carry high weight and therefore
appear in many enumerated configurations — reproducing the overlap
structure Section 7 manipulates (pairs "sharing a significant number of
design structures" vs pairs with "little overlap").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..queries.ast import Query
from .configuration import Configuration
from .structures import Index, MaterializedView

__all__ = ["CandidatePool", "build_pool", "enumerate_configurations"]


@dataclass
class CandidatePool:
    """Candidate structures with per-structure usefulness weights.

    ``index_weights`` / ``view_weights`` count how many workload queries
    suggested each structure; enumeration samples proportionally to
    these counts.
    """

    index_weights: Dict[Index, int] = field(default_factory=dict)
    view_weights: Dict[MaterializedView, int] = field(default_factory=dict)

    def add_index(self, index: Index, weight: int = 1) -> None:
        """Record (or re-weight) an index candidate."""
        self.index_weights[index] = self.index_weights.get(index, 0) + weight

    def add_view(self, view: MaterializedView, weight: int = 1) -> None:
        """Record (or re-weight) a view candidate."""
        self.view_weights[view] = self.view_weights.get(view, 0) + weight

    @property
    def indexes(self) -> List[Index]:
        """All candidate indexes, deterministic order."""
        return sorted(self.index_weights)

    @property
    def views(self) -> List[MaterializedView]:
        """All candidate views, deterministic order (by name)."""
        return sorted(self.view_weights, key=lambda v: v.name)

    @property
    def size(self) -> int:
        """Total number of candidate structures."""
        return len(self.index_weights) + len(self.view_weights)


def _index_variants(index: Index) -> List[Index]:
    """Merge-style variants of a suggested index.

    A design tool generates, besides the full covering suggestion, a
    keys-only variant and a single-leading-column variant (cheaper to
    store, less useful).  Deduplication happens in the pool.
    """
    variants = [index]
    if index.include_columns:
        variants.append(Index(index.table, index.key_columns))
    if len(index.key_columns) > 1:
        variants.append(Index(index.table, (index.leading_column,)))
    return variants


def build_pool(
    queries: Iterable[Query],
    optimizer: "WhatIfOptimizer",
    include_views: bool = True,
) -> CandidatePool:
    """Build a candidate pool from per-query optimizer suggestions.

    ``optimizer`` is a :class:`repro.optimizer.whatif.WhatIfOptimizer`;
    typed loosely to avoid a circular import.
    """
    pool = CandidatePool()
    for query in queries:
        for suggestion in optimizer.recommended_indexes(query):
            for variant in _index_variants(suggestion):
                pool.add_index(variant)
        if include_views:
            for view in optimizer.recommended_views(query):
                pool.add_view(view)
    return pool


def _weighted_subset(
    items: Sequence,
    weights: Sequence[float],
    count: int,
    rng: np.random.Generator,
) -> List:
    """Sample ``count`` distinct items proportionally to ``weights``."""
    if count <= 0 or not items:
        return []
    count = min(count, len(items))
    probs = np.asarray(weights, dtype=np.float64)
    total = probs.sum()
    if total <= 0:
        probs = np.full(len(items), 1.0 / len(items))
    else:
        probs = probs / total
    chosen = rng.choice(len(items), size=count, replace=False, p=probs)
    return [items[i] for i in sorted(chosen)]


def enumerate_configurations(
    pool: CandidatePool,
    k: int,
    rng: np.random.Generator,
    index_only: bool = False,
    min_indexes: int = 3,
    max_indexes: int = 12,
    max_views: int = 3,
    base: Optional[Configuration] = None,
    name_prefix: str = "C",
) -> List[Configuration]:
    """Enumerate ``k`` candidate configurations from the pool.

    Each configuration draws a weighted subset of candidate indexes
    (between ``min_indexes`` and ``max_indexes``) and, unless
    ``index_only``, up to ``max_views`` views.  Structures in ``base``
    are added to every configuration, so ``base`` is by construction a
    subset of the base configuration of the result set.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    indexes = pool.indexes
    index_weights = [pool.index_weights[ix] for ix in indexes]
    views = pool.views
    view_weights = [pool.view_weights[v] for v in views]

    configurations: List[Configuration] = []
    seen = set()
    attempts = 0
    while len(configurations) < k and attempts < 50 * k:
        attempts += 1
        n_ix = int(rng.integers(min_indexes, max_indexes + 1))
        chosen_ix = _weighted_subset(indexes, index_weights, n_ix, rng)
        chosen_views: List[MaterializedView] = []
        if not index_only and views and max_views > 0:
            n_v = int(rng.integers(0, max_views + 1))
            chosen_views = _weighted_subset(views, view_weights, n_v, rng)
        cfg = Configuration(
            chosen_ix, chosen_views,
            name=f"{name_prefix}{len(configurations) + 1}",
        )
        if base is not None:
            cfg = base.union(
                cfg, name=f"{name_prefix}{len(configurations) + 1}"
            )
        if cfg in seen:
            continue
        seen.add(cfg)
        configurations.append(cfg)
    if len(configurations) < k:
        raise RuntimeError(
            f"could only enumerate {len(configurations)} distinct "
            f"configurations out of the requested {k}; the candidate "
            f"pool (size {pool.size}) is too small"
        )
    return configurations
