"""Physical design substrate: indexes, views, configurations, candidates."""

from .candidates import CandidatePool, build_pool, enumerate_configurations
from .configuration import Configuration, base_configuration
from .structures import Index, MaterializedView

__all__ = [
    "CandidatePool",
    "build_pool",
    "enumerate_configurations",
    "Configuration",
    "base_configuration",
    "Index",
    "MaterializedView",
]
