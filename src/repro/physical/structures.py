"""Physical design structures: indexes and materialized views.

These are the objects a physical design tool enumerates and a
configuration (:mod:`repro.physical.configuration`) bundles.  The
simulated optimizer consults them during access-path selection
(:mod:`repro.optimizer.access_paths`) and view matching
(:mod:`repro.optimizer.views`), and charges their maintenance cost to
DML statements (:mod:`repro.optimizer.update_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..catalog.schema import Schema
from ..queries.ast import Aggregate, ColumnRef, JoinPredicate

__all__ = ["Index", "MaterializedView", "PhysicalStructure"]


@dataclass(frozen=True, order=True)
class Index:
    """A (nonclustered) B+-tree index.

    Parameters
    ----------
    table:
        The indexed table.
    key_columns:
        Ordered key columns; the leading column determines seek
        eligibility.
    include_columns:
        Non-key columns carried in the leaf level; an index *covers* a
        query's per-table column set when keys + includes contain it.
    """

    table: str
    key_columns: Tuple[str, ...]
    include_columns: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise ValueError(f"index on {self.table!r} needs key columns")
        overlap = set(self.key_columns) & set(self.include_columns)
        if overlap:
            raise ValueError(
                f"index on {self.table!r}: columns {sorted(overlap)} are "
                "both keys and includes"
            )

    @property
    def name(self) -> str:
        """A deterministic human-readable name."""
        keys = "_".join(self.key_columns)
        if self.include_columns:
            inc = "_".join(self.include_columns)
            return f"ix_{self.table}_{keys}__inc_{inc}"
        return f"ix_{self.table}_{keys}"

    @property
    def leading_column(self) -> str:
        """The first key column (seek column)."""
        return self.key_columns[0]

    @property
    def all_columns(self) -> Tuple[str, ...]:
        """Keys followed by includes."""
        return self.key_columns + self.include_columns

    @property
    def column_set(self) -> FrozenSet[str]:
        """Keys + includes as a frozenset (computed once per index)."""
        cached = self.__dict__.get("_column_set")
        if cached is None:
            cached = frozenset(self.key_columns + self.include_columns)
            object.__setattr__(self, "_column_set", cached)
        return cached

    def covers(self, needed_columns: FrozenSet[str]) -> bool:
        """Whether the index leaf level contains all ``needed_columns``."""
        return needed_columns <= self.column_set

    def __hash__(self) -> int:
        # Indexes appear in cache keys constantly; cache the hash.
        cached = self.__dict__.get("_ixhash")
        if cached is None:
            cached = hash(
                (self.table, self.key_columns, self.include_columns)
            )
            object.__setattr__(self, "_ixhash", cached)
        return cached

    def __getstate__(self) -> dict:
        # str hashes are salted per process: never pickle cached hashes.
        state = dict(self.__dict__)
        state.pop("_ixhash", None)
        state.pop("_column_set", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def width_bytes(self, schema: Schema) -> int:
        """Leaf-entry width in bytes (keys + includes + row pointer)."""
        table = schema.table(self.table)
        width = sum(table.column(c).width for c in self.all_columns)
        return width + 8  # row locator

    def leaf_pages(self, schema: Schema, page_bytes: int = 8192) -> int:
        """Estimated number of leaf pages."""
        table = schema.table(self.table)
        if table.row_count == 0:
            return 1
        per_page = max(1, page_bytes // max(1, self.width_bytes(schema)))
        return max(1, -(-table.row_count // per_page))

    def storage_bytes(self, schema: Schema, page_bytes: int = 8192) -> int:
        """Estimated total storage footprint in bytes."""
        return self.leaf_pages(schema, page_bytes) * page_bytes


@dataclass(frozen=True)
class MaterializedView:
    """A join (optionally aggregated) materialized view.

    The view's definition is a join of ``tables`` along
    ``join_predicates``, optionally grouped by ``group_by`` with
    aggregate outputs ``aggregates``.  The simulated optimizer matches a
    view against a SELECT query when the view's tables and join edges
    form a sub-join of the query (see :mod:`repro.optimizer.views`).
    """

    tables: Tuple[str, ...]
    join_predicates: Tuple[JoinPredicate, ...]
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()

    def __post_init__(self) -> None:
        if len(self.tables) < 2 and not self.group_by:
            raise ValueError(
                "a materialized view must join >= 2 tables or aggregate"
            )
        known = set(self.tables)
        for jp in self.join_predicates:
            for t in jp.tables():
                if t not in known:
                    raise ValueError(
                        f"view join predicate references {t!r} outside "
                        f"the view tables {self.tables}"
                    )
        for ref in self.group_by:
            if ref.table not in known:
                raise ValueError(
                    f"view group-by column {ref} references a table "
                    f"outside the view tables {self.tables}"
                )

    @property
    def name(self) -> str:
        """A deterministic human-readable name."""
        base = "mv_" + "_".join(self.tables)
        if self.group_by:
            base += "__g_" + "_".join(c.column for c in self.group_by)
        return base

    @property
    def table_set(self) -> FrozenSet[str]:
        """The set of joined tables."""
        return frozenset(self.tables)

    def join_edge_keys(self) -> FrozenSet[Tuple]:
        """Canonical keys of the view's join edges, for subset matching."""
        cached = self.__dict__.get("_edge_keys")
        if cached is None:
            cached = frozenset(
                jp.template_part() for jp in self.join_predicates
            )
            object.__setattr__(self, "_edge_keys", cached)
        return cached

    def matches_select(self, query) -> bool:
        """Whether this view can stand in for part of a SELECT ``query``.

        The single source of truth for view applicability: the view's
        tables and join edges must form a sub-join of the query, an
        aggregated view must answer the query's exact grouping, and
        every residual filter column on covered tables must survive in
        the view.  Used both by plan search
        (:func:`repro.optimizer.views.matching_views`) and by
        configuration fingerprinting — a view that cannot match cannot
        influence the query's cost.
        """
        query_tables = frozenset(query.tables)
        if not self.table_set <= query_tables:
            return False
        query_edges = frozenset(
            jp.template_part() for jp in query.join_predicates
        )
        if not self.join_edge_keys() <= query_edges:
            return False
        if self.group_by:
            if self.table_set != query_tables:
                return False
            if tuple(self.group_by) != tuple(query.group_by):
                return False
            kept = {(ref.table, ref.column) for ref in self.group_by}
            for pred in query.filters:
                key = (pred.column.table, pred.column.column)
                if pred.column.table in self.table_set and key not in kept:
                    return False
        return True

    def __hash__(self) -> int:
        cached = self.__dict__.get("_vhash")
        if cached is None:
            cached = hash(
                (
                    self.tables,
                    self.join_edge_keys(),
                    self.group_by,
                    tuple(a.template_part() for a in self.aggregates),
                )
            )
            object.__setattr__(self, "_vhash", cached)
        return cached

    def __getstate__(self) -> dict:
        # str hashes are salted per process: never pickle cached hashes.
        state = dict(self.__dict__)
        state.pop("_vhash", None)
        state.pop("_edge_keys", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


#: Either kind of physical structure (for typing convenience).
PhysicalStructure = object
