"""Section 6 machinery: cost intervals, variance/skew bounds, CLT checks."""

from .clt import (
    CLTValidation,
    cochran_holds,
    cochran_min_sample,
    validate_sample_size,
)
from .cost_bounds import CostBounder, CostIntervals
from .skew_bound import SkewBoundResult, max_skew_bound
from .variance_bound import VarianceBoundResult, max_variance_bound

__all__ = [
    "CLTValidation",
    "cochran_holds",
    "cochran_min_sample",
    "validate_sample_size",
    "CostBounder",
    "CostIntervals",
    "SkewBoundResult",
    "max_skew_bound",
    "VarianceBoundResult",
    "max_variance_bound",
]
