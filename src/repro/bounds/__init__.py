"""Section 6 machinery: cost intervals, variance/skew bounds, CLT checks."""

from .clt import (
    CLTValidation,
    cochran_holds,
    cochran_min_sample,
    validate_sample_size,
)
from .cost_bounds import CostBounder, CostIntervals
from .skew_bound import (
    SkewBoundResult,
    clear_skew_bound_cache,
    max_skew_bound,
    skew_bound_cache_stats,
)
from .variance_bound import (
    VarianceBoundResult,
    clear_variance_bound_cache,
    max_variance_bound,
    variance_bound_cache_stats,
)

__all__ = [
    "CLTValidation",
    "cochran_holds",
    "cochran_min_sample",
    "validate_sample_size",
    "CostBounder",
    "CostIntervals",
    "SkewBoundResult",
    "max_skew_bound",
    "VarianceBoundResult",
    "max_variance_bound",
    "bounds_cache_stats",
    "clear_bounds_caches",
]


def bounds_cache_stats() -> dict:
    """Combined hit/miss counters of the two DP memo caches."""
    return {
        "variance": variance_bound_cache_stats(),
        "skew": skew_bound_cache_stats(),
    }


def clear_bounds_caches() -> None:
    """Clear both DP memo caches (tests, long-lived services)."""
    clear_variance_bound_cache()
    clear_skew_bound_cache()
