"""CLT applicability: the modified Cochran rule (Section 6.2).

Cochran's classical rule of thumb says a sample of a positively skewed
population supports normal-theory confidence statements once
``n > 25 * G1^2`` (``G1`` = Fisher skew).  The paper uses the Sugden et
al. [19] modification

    n > 28 + 25 * G1^2

which was found robust for physical-design population sizes.  Combined
with the conservative ``G1`` upper bound of
:mod:`repro.bounds.skew_bound`, this yields a *verifiable* minimum
sample size: if the rule holds for ``G1_max``, it holds for the true
population skew.

The module also reproduces the Section 6 observation that the required
*fraction* of the workload shrinks with workload size (about 4% of a
13K-query workload vs under 0.6% of a 131K-query one in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .skew_bound import max_skew_bound
from .variance_bound import max_variance_bound

__all__ = [
    "cochran_min_sample",
    "cochran_holds",
    "CLTValidation",
    "validate_sample_size",
]


def cochran_min_sample(g1: float) -> int:
    """Minimum sample size under the modified Cochran rule (eq. 9)."""
    if g1 < 0:
        raise ValueError(f"skew must be non-negative, got {g1}")
    if math.isinf(g1):
        raise OverflowError(
            "infinite skew bound: the rule gives no finite sample size"
        )
    return int(math.floor(28 + 25 * g1 * g1)) + 1


def cochran_holds(n: int, g1: float) -> bool:
    """Whether a sample of size ``n`` satisfies ``n > 28 + 25 G1^2``."""
    if math.isinf(g1):
        return False
    return n > 28 + 25 * g1 * g1


@dataclass(frozen=True)
class CLTValidation:
    """Outcome of validating a sample size against cost intervals.

    Attributes
    ----------
    g1_max:
        Conservative upper bound on the population skew.
    sigma2_max:
        Certified upper bound on the population variance (substitute
        for ``s_i^2`` to make Pr(CS) conservative).
    min_sample:
        Smallest sample size the modified Cochran rule accepts, or
        ``None`` when the skew bound is infinite.
    required_fraction:
        ``min_sample / N`` (``None`` alongside ``min_sample``).
    """

    g1_max: float
    sigma2_max: float
    min_sample: Optional[int]
    required_fraction: Optional[float]

    def accepts(self, n: int) -> bool:
        """Whether a sample of size ``n`` passes the rule."""
        return self.min_sample is not None and n >= self.min_sample


def validate_sample_size(
    lows: np.ndarray,
    highs: np.ndarray,
    rho: float,
    max_states: Optional[int] = 50_000_000,
) -> CLTValidation:
    """Bound skew and variance from cost intervals, apply the rule.

    Parameters
    ----------
    lows / highs:
        Per-query cost intervals (see
        :class:`repro.bounds.cost_bounds.CostBounder`).
    rho:
        DP granularity for both maximization problems.
    """
    n = len(np.asarray(lows))
    var = max_variance_bound(lows, highs, rho, max_states=max_states)
    skew = max_skew_bound(lows, highs, rho, max_states=max_states)
    if math.isinf(skew.g1_max):
        return CLTValidation(
            g1_max=skew.g1_max,
            sigma2_max=var.upper_bound,
            min_sample=None,
            required_fraction=None,
        )
    minimum = cochran_min_sample(skew.g1_max)
    return CLTValidation(
        g1_max=skew.g1_max,
        sigma2_max=var.upper_bound,
        min_sample=minimum,
        required_fraction=minimum / max(1, n),
    )
