"""Per-query cost intervals from domain knowledge (Section 6.1).

The variance/skew bounds of Section 6.2 need, for every query that has
*not* been sampled, an interval guaranteed to contain its cost.  In the
physical-design setting this is tractable:

* **SELECT queries.** If the optimizer is well-behaved, adding
  structures can only reduce a SELECT's cost.  Its cost in the *base
  configuration* (structures present in every candidate) is therefore
  an upper bound for any enumerated configuration, and its cost in an
  *ideal configuration* — the base plus every structure the optimizer's
  instrumentation ([2]-style, see
  :meth:`repro.optimizer.whatif.WhatIfOptimizer.ideal_configuration`)
  deems useful for the query — is a lower bound.  Two optimizer calls
  per query, valid across the whole configuration space.

* **DML statements.** Split into SELECT part + pure update part (the
  paper's example).  The SELECT part is bounded as above.  The pure
  update part's cost grows with its selectivity, so within a template
  the statements with the smallest/largest estimated selectivity bound
  everyone else: two optimizer calls per (template, configuration).
  For configuration-independent intervals, the update part is bounded
  below in the base configuration (fewest structures to maintain) and
  above in the union of all candidate structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..optimizer.update_cost import select_part
from ..physical.configuration import Configuration
from ..queries.ast import Query, QueryType

__all__ = ["CostIntervals", "CostBounder"]


@dataclass(frozen=True)
class CostIntervals:
    """Per-query cost intervals plus bookkeeping.

    Attributes
    ----------
    lows / highs:
        Arrays of length N with the certified interval per query.
    optimizer_calls:
        What-if calls spent deriving the intervals.
    """

    lows: np.ndarray
    highs: np.ndarray
    optimizer_calls: int

    def widths(self) -> np.ndarray:
        """Interval widths (useful to pick the DP granularity ``rho``)."""
        return self.highs - self.lows

    def contains(self, costs: np.ndarray, atol: float = 1e-9) -> bool:
        """Whether every cost lies inside its interval (validation)."""
        costs = np.asarray(costs, dtype=np.float64)
        return bool(
            np.all(costs >= self.lows - atol)
            and np.all(costs <= self.highs + atol)
        )


class CostBounder:
    """Derives cost intervals for a workload over a configuration space.

    Parameters
    ----------
    optimizer:
        A :class:`repro.optimizer.whatif.WhatIfOptimizer`.
    workload:
        A :class:`repro.workload.workload.Workload`.
    base_config:
        The base configuration (structures shared by every candidate).
    union_config:
        The union of all candidate structures; used as the worst-case
        maintenance environment for DML upper bounds.  Defaults to the
        base configuration (i.e. bounds valid only when no candidate
        adds structures on updated tables — pass the real union for
        correctness over a candidate set).
    index_only:
        When the explored configuration space contains no materialized
        views (e.g. Figure 3's candidates), the ideal configuration
        used for SELECT lower bounds may drop view suggestions too,
        yielding much tighter — still valid — intervals.
    """

    def __init__(
        self,
        optimizer,
        workload,
        base_config: Configuration,
        union_config: Optional[Configuration] = None,
        index_only: bool = False,
    ) -> None:
        self.optimizer = optimizer
        self.workload = workload
        self.base_config = base_config
        self.union_config = (
            union_config if union_config is not None else base_config
        )
        self.index_only = index_only

    # ------------------------------------------------------------------
    # SELECT bounds
    # ------------------------------------------------------------------
    def select_bounds(self, query: Query) -> Tuple[float, float]:
        """[ideal-config cost, base-config cost] for a SELECT query."""
        if query.qtype != QueryType.SELECT:
            raise ValueError(
                f"select_bounds expects a SELECT, got {query.qtype}"
            )
        high = self.optimizer.cost(query, self.base_config)
        ideal = self.optimizer.ideal_configuration(query)
        if self.index_only:
            ideal = Configuration(ideal.indexes, name="ideal-ix")
        ideal = self.base_config.union(ideal, name="ideal+base")
        low = self.optimizer.cost(query, ideal)
        if low > high:
            # Defensive: a well-behaved optimizer never does this, but
            # the interval must stay valid regardless.
            low, high = high, low
        return low, high

    # ------------------------------------------------------------------
    # DML bounds
    # ------------------------------------------------------------------
    def _dml_bounds(self, query: Query) -> Tuple[float, float]:
        if query.qtype == QueryType.INSERT:
            low = self.optimizer.cost(query, self.base_config)
            high = self.optimizer.cost(query, self.union_config)
            return min(low, high), max(low, high)
        locate = select_part(query)
        sel_low, sel_high = self.select_bounds(locate)
        # Pure update part = full statement cost minus its SELECT part,
        # evaluated in the extreme maintenance environments.
        base_total = self.optimizer.cost(query, self.base_config)
        base_select = self.optimizer.cost(locate, self.base_config)
        union_total = self.optimizer.cost(query, self.union_config)
        union_select = self.optimizer.cost(locate, self.union_config)
        update_low = max(0.0, base_total - base_select)
        update_high = max(update_low, union_total - union_select)
        return sel_low + update_low, sel_high + update_high

    def _template_extremes(self) -> Dict[int, Tuple[int, int]]:
        """Per DML template: (min-selectivity, max-selectivity) members.

        Selectivity here is the optimizer's *estimated affected rows*,
        computable from statistics alone (no full optimization), which
        is what makes the per-template trick cheap.
        """
        from ..optimizer.update_cost import affected_rows

        extremes: Dict[int, Tuple[int, int]] = {}
        rows_cache: Dict[int, float] = {}
        for i, q in enumerate(self.workload.queries):
            if q.qtype not in QueryType.DML:
                continue
            tid = int(self.workload.template_ids[i])
            rows = affected_rows(q, self.optimizer.schema,
                                 self.optimizer.stats)
            if tid not in extremes:
                extremes[tid] = (i, i)
                rows_cache[tid] = rows
                rows_cache[-tid - 1] = rows
                continue
            lo_i, hi_i = extremes[tid]
            if rows < rows_cache[tid]:
                extremes[tid] = (i, hi_i)
                rows_cache[tid] = rows
            elif rows > rows_cache[-tid - 1]:
                extremes[tid] = (lo_i, i)
                rows_cache[-tid - 1] = rows
        return extremes

    # ------------------------------------------------------------------
    # workload-level intervals
    # ------------------------------------------------------------------
    def universal_intervals(self) -> CostIntervals:
        """Intervals valid for every configuration between base and union.

        SELECTs cost two calls each; DML statements are bounded via the
        per-template extreme-selectivity trick: two full costings per
        (template, environment) plus each member's own SELECT-part
        bounds scaled by its selectivity ratio — conservatively, we
        simply take the template's widest update-part interval for all
        members, preserving validity.
        """
        calls_before = self.optimizer.calls
        n = self.workload.size
        lows = np.zeros(n)
        highs = np.zeros(n)
        template_update_bounds: Dict[int, Tuple[float, float]] = {}
        extremes = self._template_extremes()
        for tid, (lo_i, hi_i) in extremes.items():
            lo_low, _lo_high = self._dml_bounds(self.workload[lo_i])
            _hi_low, hi_high = self._dml_bounds(self.workload[hi_i])
            template_update_bounds[tid] = (lo_low, max(lo_low, hi_high))
        for i, q in enumerate(self.workload.queries):
            if q.qtype == QueryType.SELECT:
                lows[i], highs[i] = self.select_bounds(q)
            else:
                tid = int(self.workload.template_ids[i])
                lows[i], highs[i] = template_update_bounds[tid]
        return CostIntervals(
            lows=lows,
            highs=highs,
            optimizer_calls=self.optimizer.calls - calls_before,
        )

    def intervals_for_config(self, config: Configuration) -> CostIntervals:
        """Intervals specialized to one configuration.

        SELECT intervals stay [ideal, base]; DML statements are bounded
        per template by the two extreme-selectivity statements costed
        *in this configuration* (two calls per template, as in §6.1).
        """
        calls_before = self.optimizer.calls
        n = self.workload.size
        lows = np.zeros(n)
        highs = np.zeros(n)
        extremes = self._template_extremes()
        template_bounds: Dict[int, Tuple[float, float]] = {}
        for tid, (lo_i, hi_i) in extremes.items():
            lo_cost = self.optimizer.cost(self.workload[lo_i], config)
            hi_cost = self.optimizer.cost(self.workload[hi_i], config)
            template_bounds[tid] = (
                min(lo_cost, hi_cost), max(lo_cost, hi_cost)
            )
        for i, q in enumerate(self.workload.queries):
            if q.qtype == QueryType.SELECT:
                lows[i], highs[i] = self.select_bounds(q)
            else:
                tid = int(self.workload.template_ids[i])
                lows[i], highs[i] = template_bounds[tid]
        return CostIntervals(
            lows=lows,
            highs=highs,
            optimizer_calls=self.optimizer.calls - calls_before,
        )
