"""Conservative upper bound on Fisher skew over interval-bounded data.

Section 6.2 of the paper bounds ``G1`` — Fisher's skewness measure of
the cost population — with "an approximation scheme similar to the one
used for sigma^2_max", whose description the paper omits for space.  We
implement a *conservative* analogue and document it as such (DESIGN.md,
"Deviations"):

For every achievable rounded sum ``s`` (values restricted to interval
boundaries and the ``rho``-grid, as in the variance DP), three dynamic
programs track

* ``max sum v_i^3``  (numerator, upward),
* ``min sum v_i^2``  (denominator, downward),
* ``max sum v_i^2``  (needed by the numerator's ``-3 mu sum v^2`` term
  when ``mu < 0``; costs are non-negative so this is defensive only).

With the mean ``mu = s/n`` fixed per state, the third central moment

    sum (v_i - mu)^3 = sum v^3 - 3 mu sum v^2 + 3 mu^2 s - n mu^3

is bounded above by combining the per-state extrema, and the variance
is bounded below analogously.  The ratio of the two bounds over-covers
the true maximum of the ratio (numerator and denominator need not be
attained by the same assignment), hence *conservative*: Cochran-style
sample-size checks built on it never accept a too-small sample.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ._dp import apply_group, group_intervals
from ._dp import round_to_grid as _round_to_grid

__all__ = [
    "SkewBoundResult",
    "max_skew_bound",
    "skew_bound_cache_stats",
    "clear_skew_bound_cache",
]

# Memoization by rounded interval multiset, as in variance_bound: all
# three DPs and the per-state combination walk the canonical group
# order, so the result is a pure function of (rho, variance_floor,
# grouped intervals).
_MEMO_MAX = 256
_memo: "OrderedDict[tuple, SkewBoundResult]" = OrderedDict()
_memo_stats = {"hits": 0, "misses": 0}


def skew_bound_cache_stats() -> dict:
    """Hit/miss counters and current size of the DP memo cache."""
    return dict(_memo_stats, size=len(_memo), capacity=_MEMO_MAX)


def clear_skew_bound_cache() -> None:
    """Drop all memoized skew-bound results and reset counters."""
    _memo.clear()
    _memo_stats["hits"] = 0
    _memo_stats["misses"] = 0


@dataclass(frozen=True)
class SkewBoundResult:
    """Result of the skew-maximization approximation.

    Attributes
    ----------
    g1_max:
        Conservative upper bound on Fisher skew ``G1`` (may be
        ``inf`` when some achievable sum admits near-zero variance).
    states:
        DP state-space size.
    rho:
        Grid granularity used.
    """

    g1_max: float
    states: int
    rho: float


def max_skew_bound(
    lows: np.ndarray,
    highs: np.ndarray,
    rho: float,
    max_states: Optional[int] = 50_000_000,
    variance_floor: float = 1e-12,
    memoize: bool = True,
) -> SkewBoundResult:
    """Conservative upper bound on ``G1_max`` over the interval box.

    Parameters mirror
    :func:`repro.bounds.variance_bound.max_variance_bound`;
    ``variance_floor`` guards the denominator (states whose variance
    lower bound falls below it yield an infinite skew bound, which is
    the conservative answer).  ``memoize`` serves repeated rounded
    interval multisets from the module-level cache.
    """
    lows = np.asarray(lows, dtype=np.float64)
    highs = np.asarray(highs, dtype=np.float64)
    if lows.shape != highs.shape or lows.ndim != 1:
        raise ValueError("lows and highs must be 1-D arrays of equal length")
    if len(lows) == 0:
        raise ValueError("need at least one interval")
    if (highs < lows).any():
        raise ValueError("every interval needs high >= low")
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")

    n = len(lows)
    a = _round_to_grid(lows, rho)
    b = np.maximum(_round_to_grid(highs, rho), a)
    d = b - a
    total_states = int(d.sum()) + 1
    if max_states is not None and total_states > max_states:
        raise ValueError(
            f"DP state space {total_states} exceeds max_states="
            f"{max_states}; increase rho"
        )

    base_sum = int(a.sum())

    groups = group_intervals(a, b)
    key = (float(rho), float(variance_floor), tuple(groups))
    if memoize:
        cached = _memo.get(key)
        if cached is not None:
            _memo.move_to_end(key)
            _memo_stats["hits"] += 1
            return cached
        _memo_stats["misses"] += 1

    max_sq = np.zeros(1)
    min_sq = np.zeros(1)
    max_cu = np.zeros(1)
    fixed_sq = 0.0
    fixed_cu = 0.0
    for lo_g, hi_g, m in groups:
        lo_v = lo_g * rho
        hi_v = hi_g * rho
        if hi_g == lo_g:
            fixed_sq += m * lo_v**2
            fixed_cu += m * lo_v**3
            continue
        width = hi_g - lo_g
        max_sq = apply_group(
            max_sq, width, m, base=lo_v**2, alpha=hi_v**2 - lo_v**2,
            kind="max",
        )
        min_sq = apply_group(
            min_sq, width, m, base=lo_v**2, alpha=hi_v**2 - lo_v**2,
            kind="min",
        )
        max_cu = apply_group(
            max_cu, width, m, base=lo_v**3, alpha=hi_v**3 - lo_v**3,
            kind="max",
        )

    j = np.arange(len(max_sq), dtype=np.float64)
    sums = (base_sum + j) * rho
    mu = sums / n

    sq_for_numerator = np.where(mu >= 0, min_sq + fixed_sq,
                                max_sq + fixed_sq)
    numerator_ub = (
        (max_cu + fixed_cu)
        - 3.0 * mu * sq_for_numerator
        + 3.0 * mu * mu * sums
        - n * mu**3
    )
    variance_lb = np.maximum(0.0, ((min_sq + fixed_sq) - n * mu * mu) / n)

    reachable = np.isfinite(max_cu)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = numerator_ub / (n * variance_lb**1.5)
    ratios = np.where(variance_lb < variance_floor,
                      np.where(numerator_ub > 0, np.inf, -np.inf),
                      ratios)
    ratios = np.where(reachable, ratios, -np.inf)
    g1 = float(np.max(ratios)) if len(ratios) else 0.0
    result = SkewBoundResult(g1_max=max(0.0, g1), states=total_states,
                             rho=rho)
    if memoize:
        _memo[key] = result
        if len(_memo) > _MEMO_MAX:
            _memo.popitem(last=False)
    return result
