"""DP approximation of the maximum variance over interval-bounded data.

Section 6.2 of the paper: given per-query cost intervals
``low_i <= v_i <= high_i``, compute (an upper bound on) the maximum
population variance any cost assignment could have.  The exact problem
is NP-hard [11, 12]; the paper's approximation restricts values to
multiples of a granularity ``rho`` and solves the restricted problem by
dynamic programming over achievable sums, with a provable error band
``theta``.

The published optimizations are implemented, plus one more:

* **boundary values only** — the variance maximum over a box is
  attained at a vertex [16], so each ``v_i`` is ``low_i`` or ``high_i``;
* **cheap degenerate intervals** — queries with ``low == high``
  contribute a constant offset and no state growth (the ascending-range
  traversal's limit case);
* **interval grouping** — queries with identical rounded intervals
  (whole templates, typically) fold into a single sliding-window
  max-plus transition (see :mod:`repro.bounds._dp`), reducing the work
  from ``O(n * states)`` to ``O(G * states)`` for ``G`` distinct
  intervals.

The state space has ``1 + sum_i range_i`` entries, linear in ``1/rho``
— matching the overhead shape of the paper's Table 1.

Results are memoized (``memoize=True``, the default) keyed by the
*rounded interval multiset* — ``(rho, grouped (lo, hi, multiplicity)
triples)``.  Identical interval sets recur across configurations and
strata (whole templates share bounds), and every output of this module
is a pure function of that multiset: the DP walks groups in canonical
(sorted) order, and ``theta`` is evaluated over the canonical grouped
expansion.  A repeated query is a dict hit instead of a full DP.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ._dp import apply_group, group_intervals, round_to_grid

__all__ = [
    "VarianceBoundResult",
    "max_variance_bound",
    "variance_bound_cache_stats",
    "clear_variance_bound_cache",
]

_MEMO_MAX = 256
_memo: "OrderedDict[tuple, VarianceBoundResult]" = OrderedDict()
_memo_stats = {"hits": 0, "misses": 0}


def variance_bound_cache_stats() -> dict:
    """Hit/miss counters and current size of the DP memo cache."""
    return dict(_memo_stats, size=len(_memo), capacity=_MEMO_MAX)


def clear_variance_bound_cache() -> None:
    """Drop all memoized variance-bound results and reset counters."""
    _memo.clear()
    _memo_stats["hits"] = 0
    _memo_stats["misses"] = 0

# Backwards-compatible alias used by the skew module.
_round_to_grid = round_to_grid


@dataclass(frozen=True)
class VarianceBoundResult:
    """Result of the variance-maximization approximation.

    Attributes
    ----------
    sigma2_hat:
        The optimum over the ``rho``-grid, ``\\hat{sigma}^2_max``.
    theta:
        The accuracy band: the true continuous optimum lies within
        ``sigma2_hat +- theta``.
    states:
        Size of the DP state space (for overhead reporting, Table 1).
    rho:
        The granularity used.
    """

    sigma2_hat: float
    theta: float
    states: int
    rho: float

    @property
    def upper_bound(self) -> float:
        """Certified upper bound on the true maximum variance."""
        return self.sigma2_hat + self.theta

    @property
    def lower_bound(self) -> float:
        """Certified lower bound on the true maximum variance."""
        return max(0.0, self.sigma2_hat - self.theta)


def max_variance_bound(
    lows: np.ndarray,
    highs: np.ndarray,
    rho: float,
    max_states: Optional[int] = 50_000_000,
    memoize: bool = True,
) -> VarianceBoundResult:
    """Approximate ``sigma^2_max`` over the interval box (equation 6).

    Parameters
    ----------
    lows / highs:
        Per-query lower/upper cost bounds (``0 <= lows <= highs``).
    rho:
        Grid granularity; smaller is tighter but slower (Table 1).
    max_states:
        Guard against accidental huge state spaces; raises
        ``ValueError`` when exceeded (choose a larger ``rho``).
    memoize:
        Serve repeated ``(rho, rounded interval multiset)`` queries
        from the module-level memo cache (the result is a pure
        function of that key; the ``max_states`` guard still runs on
        every call).

    Returns
    -------
    VarianceBoundResult
        The grid optimum with its ``theta`` accuracy band.
    """
    lows = np.asarray(lows, dtype=np.float64)
    highs = np.asarray(highs, dtype=np.float64)
    if lows.shape != highs.shape or lows.ndim != 1:
        raise ValueError("lows and highs must be 1-D arrays of equal length")
    if len(lows) == 0:
        raise ValueError("need at least one interval")
    if (highs < lows).any():
        bad = int(np.argmax(highs < lows))
        raise ValueError(
            f"interval {bad} has high ({highs[bad]}) < low ({lows[bad]})"
        )
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")

    n = len(lows)
    a = round_to_grid(lows, rho)
    b = np.maximum(round_to_grid(highs, rho), a)
    d = b - a
    total_states = int(d.sum()) + 1
    if max_states is not None and total_states > max_states:
        raise ValueError(
            f"DP state space {total_states} exceeds max_states="
            f"{max_states}; increase rho"
        )

    base_sum = int(a.sum())

    groups = group_intervals(a, b)
    key = (float(rho), tuple(groups))
    if memoize:
        cached = _memo.get(key)
        if cached is not None:
            _memo.move_to_end(key)
            _memo_stats["hits"] += 1
            return cached
        _memo_stats["misses"] += 1

    state = np.zeros(1, dtype=np.float64)
    fixed_sq = 0.0
    for lo_g, hi_g, m in groups:
        lo_sq = (lo_g * rho) ** 2
        hi_sq = (hi_g * rho) ** 2
        if hi_g == lo_g:
            fixed_sq += m * lo_sq
            continue
        state = apply_group(
            state, d=hi_g - lo_g, m=m, base=lo_sq,
            alpha=hi_sq - lo_sq, kind="max",
        )

    j = np.arange(len(state), dtype=np.float64)
    sums = (base_sum + j) * rho
    totals_sq = state + fixed_sq
    with np.errstate(invalid="ignore"):
        variances = (totals_sq - sums * sums / n) / n
    variances = np.where(np.isfinite(state), variances, -np.inf)
    sigma2_hat = float(np.max(variances))

    # Accuracy band theta = (2/n) * sum(rho * v_i^rho + rho^2/4),
    # evaluated conservatively with every v_i at its high value — over
    # the canonical grouped expansion, so the result depends only on
    # the interval multiset (required for memoization).
    b_canon = np.repeat(
        np.array([hi for _lo, hi, _m in groups], dtype=np.float64),
        [m for _lo, _hi, m in groups],
    )
    theta = float(
        2.0 / n * np.sum(rho * (b_canon * rho) + rho * rho / 4)
    )
    result = VarianceBoundResult(
        sigma2_hat=sigma2_hat, theta=theta, states=total_states, rho=rho
    )
    if memoize:
        _memo[key] = result
        if len(_memo) > _MEMO_MAX:
            _memo.popitem(last=False)
    return result
