"""Shared dynamic-programming kernels for the interval-bound problems.

The variance and skew maximization DPs (Section 6.2) walk the same
state space: achievable rounded sums of boundary-valued assignments.
Processing queries one at a time costs ``O(n * states)``; but physical
design workloads contain many queries with *identical rounded
intervals* (whole templates share bounds), and ``m`` identical items
can be folded into a single transition:

For a group of ``m`` items with interval ``{lo, hi}`` (grid difference
``d``, per-item flip gain ``alpha`` — e.g. ``hi^2 - lo^2`` for the
variance DP), choosing ``c`` items at ``hi`` shifts the sum by
``c * d`` and adds ``m * base + c * alpha``.  Within each residue class
modulo ``d`` the transition becomes

    new[p] = m * base + p * alpha + extremum_{i in [p-m, p]}
             (old[i] - i * alpha)

a sliding-window maximum/minimum, computed in ``O(states)`` with
:func:`scipy.ndimage.maximum_filter1d`.  Total work drops from
``O(n * states)`` to ``O(G * states)`` for ``G`` distinct intervals —
this is what makes Table 1-scale inputs tractable and is the practical
realization of the paper's remark that ``total_m`` grows much more
slowly than the number of bound combinations.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d

__all__ = [
    "round_to_grid",
    "group_intervals",
    "apply_group",
    "apply_group_reference",
]


def round_to_grid(values: np.ndarray, rho: float) -> np.ndarray:
    """Round to the nearest multiple of ``rho``, in grid units."""
    return np.floor((np.asarray(values, dtype=np.float64) + rho / 2.0)
                    / rho).astype(np.int64)


def group_intervals(
    a: np.ndarray, b: np.ndarray
) -> List[Tuple[int, int, int]]:
    """Collapse identical grid intervals into ``(a, b, multiplicity)``.

    Degenerate intervals (``a == b``) are included; callers typically
    fold them into a constant offset before running transitions.
    """
    pairs = np.stack([a, b], axis=1)
    uniq, counts = np.unique(pairs, axis=0, return_counts=True)
    return [
        (int(lo), int(hi), int(m))
        for (lo, hi), m in zip(uniq, counts)
    ]


def _window_extremum(
    u: np.ndarray, window: int, kind: str
) -> np.ndarray:
    """Trailing-window extremum: out[p] = ext(u[max(0, p-window+1) : p+1])."""
    size = window
    origin = (size - 1) // 2
    if kind == "max":
        return maximum_filter1d(
            u, size=size, mode="constant", cval=-np.inf, origin=origin
        )
    return minimum_filter1d(
        u, size=size, mode="constant", cval=np.inf, origin=origin
    )


def apply_group(
    state: np.ndarray,
    d: int,
    m: int,
    base: float,
    alpha: float,
    kind: str = "max",
) -> np.ndarray:
    """One grouped DP transition.

    Parameters
    ----------
    state:
        Current DP values over sum offsets (in grid units); ``-inf`` /
        ``inf`` marks unreachable offsets for max/min respectively.
    d:
        Grid width of the group's interval (``> 0``).
    m:
        Number of identical items in the group.
    base:
        Per-item contribution when the item sits at its low bound
        (e.g. ``lo^2``); the group adds ``m * base`` unconditionally.
    alpha:
        Per-item gain of flipping one item to its high bound
        (e.g. ``hi^2 - lo^2``).
    kind:
        ``"max"`` or ``"min"``.

    Returns
    -------
    numpy.ndarray
        New state of length ``len(state) + m * d``.
    """
    if d <= 0:
        raise ValueError(f"group width d must be positive, got {d}")
    if m <= 0:
        raise ValueError(f"group multiplicity must be positive, got {m}")
    cur = len(state)
    new_len = cur + m * d
    fill = -np.inf if kind == "max" else np.inf
    n_classes = min(d, new_len)
    if m + 1 < n_classes:
        # Few items, wide interval: enumerating the flip count c is
        # cheaper than walking d residue classes (m + 1 whole-array
        # ops instead of one packed filter over d rows).
        out = np.full(new_len, fill)
        reducer = np.maximum if kind == "max" else np.minimum
        for c in range(m + 1):
            lo_off = c * d
            contribution = m * base + c * alpha
            segment = out[lo_off: lo_off + cur]
            reducer(segment, state + contribution, out=segment)
        return out
    # Pack the d residue classes as rows of one (d, width) matrix —
    # state[r + i*d] lands at [r, i] — pad every row with `fill`, and
    # run a single axis-1 trailing-window filter.  Row r sees exactly
    # the inputs the per-class loop fed its 1-D filter (fill padding
    # included), so each class's output is bitwise identical; the
    # transpose-ravel scatters [r, i] back to position r + i*d, and the
    # short rows' surplus tail entries all land at indices >= new_len,
    # where truncation drops them.
    width = -(-cur // d)
    padded = np.full(width * d, fill)
    padded[:cur] = state
    packed = padded.reshape(width, d).T
    idx = np.arange(width, dtype=np.float64)
    u = np.concatenate(
        [packed - idx * alpha, np.full((d, m), fill)], axis=1
    )
    size = m + 1
    origin = (size - 1) // 2
    if kind == "max":
        ext = maximum_filter1d(
            u, size=size, axis=1, mode="constant", cval=fill,
            origin=origin,
        )
    else:
        ext = minimum_filter1d(
            u, size=size, axis=1, mode="constant", cval=fill,
            origin=origin,
        )
    p = np.arange(width + m, dtype=np.float64)
    out = m * base + p * alpha + ext
    return out.T.ravel()[:new_len].copy()


def apply_group_reference(
    state: np.ndarray,
    d: int,
    m: int,
    base: float,
    alpha: float,
    kind: str = "max",
) -> np.ndarray:
    """The historical per-residue-class transition (parity baseline).

    Same contract as :func:`apply_group`; walks the ``d`` residue
    classes one strided slice at a time instead of packing them into a
    single filtered matrix.  Kept for the bitwise-parity tests in
    ``tests/test_bound_kernels.py``.
    """
    if d <= 0:
        raise ValueError(f"group width d must be positive, got {d}")
    if m <= 0:
        raise ValueError(f"group multiplicity must be positive, got {m}")
    cur = len(state)
    new_len = cur + m * d
    fill = -np.inf if kind == "max" else np.inf
    out = np.full(new_len, fill)
    n_classes = min(d, new_len)
    if m + 1 < n_classes:
        reducer = np.maximum if kind == "max" else np.minimum
        for c in range(m + 1):
            lo_off = c * d
            contribution = m * base + c * alpha
            segment = out[lo_off: lo_off + cur]
            reducer(segment, state + contribution, out=segment)
        return out
    for r in range(n_classes):
        t = state[r::d]
        if len(t) == 0:
            continue
        idx = np.arange(len(t), dtype=np.float64)
        u = t - idx * alpha
        padded = np.concatenate([u, np.full(m, fill)])
        ext = _window_extremum(padded, m + 1, kind)
        p = np.arange(len(padded), dtype=np.float64)
        out[r::d] = m * base + p * alpha + ext
    return out
