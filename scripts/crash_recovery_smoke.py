#!/usr/bin/env python
"""SIGKILL-and-resume smoke test for the tuning service.

Three runs of the same ``repro serve`` command:

1. A reference run, uninterrupted, to learn the expected final
   configuration and retune count.
2. A victim run with ``--checkpoint``: the script watches the event
   log and SIGKILLs the process the moment the second retune starts —
   an actual hard crash mid-selection, no cleanup handlers.
3. The identical command again, which must *resume* from the
   checkpoint, finish the trace, and land on the reference answer.

Asserts afterwards: the recovered event log is contiguous (``seq`` is
gapless across the crash — ``read_events`` validates framing), a
``service_resume`` event was emitted, the final checkpoint sits at the
end of the trace, and the resumed run's final configuration matches
the reference.  Exit code 0 on success.

Usage::

    python scripts/crash_recovery_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without install
    sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.service import read_events
from repro.service.checkpoint import load_service_checkpoint

SERVE_ARGS = [
    "serve", "--db", "crm", "--size", "600", "--seed", "3",
    "--window", "200", "--budget", "300", "--json",
]
KILL_AT_RETUNE = 2
TIMEOUT = 300.0


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cmd(events: str, checkpoint: str) -> list:
    return [
        sys.executable, "-m", "repro.cli", *SERVE_ARGS,
        "--events", events, "--checkpoint", checkpoint,
    ]


def _run_to_completion(events: str, checkpoint: str) -> dict:
    proc = subprocess.run(
        _cmd(events, checkpoint),
        env=_env(), cwd=ROOT, capture_output=True, text=True,
        timeout=TIMEOUT,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"serve exited with {proc.returncode}")
    return json.loads(proc.stdout)


def _count_kind(events_path: str, kind: str) -> int:
    if not os.path.exists(events_path):
        return 0
    count = 0
    with open(events_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of the live log
            if record.get("kind") == kind:
                count += 1
    return count


def _run_until_killed(events: str, checkpoint: str) -> None:
    proc = subprocess.Popen(
        _cmd(events, checkpoint),
        env=_env(), cwd=ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + TIMEOUT
    try:
        while time.monotonic() < deadline:
            if _count_kind(events, "retune_start") >= KILL_AT_RETUNE:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                print(
                    f"killed pid {proc.pid} at retune "
                    f"#{KILL_AT_RETUNE} start"
                )
                return
            if proc.poll() is not None:
                raise SystemExit(
                    f"victim finished (rc={proc.returncode}) before "
                    f"retune #{KILL_AT_RETUNE} — trace too short to "
                    f"crash mid-run"
                )
            time.sleep(0.05)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    raise SystemExit("timed out waiting for the kill point")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="write artifacts into DIR instead of a temp directory",
    )
    args = parser.parse_args()

    workdir = args.keep or tempfile.mkdtemp(prefix="crash_smoke_")
    os.makedirs(workdir, exist_ok=True)
    ref_events = os.path.join(workdir, "reference-events.jsonl")
    ref_ckpt = os.path.join(workdir, "reference-ckpt.json")
    events = os.path.join(workdir, "crash-events.jsonl")
    ckpt = os.path.join(workdir, "crash-ckpt.json")

    print("== reference run (uninterrupted) ==")
    reference = _run_to_completion(ref_events, ref_ckpt)
    ref_retunes = len(reference["retunes"])
    print(
        f"reference: final C{reference['final_index']}, "
        f"{ref_retunes} retunes"
    )
    if ref_retunes < KILL_AT_RETUNE:
        raise SystemExit("scenario produced too few retunes to test")

    print("== victim run (SIGKILL mid-retune) ==")
    _run_until_killed(events, ckpt)
    crashed = load_service_checkpoint(ckpt)
    print(f"checkpoint after crash: position {crashed['position']}")

    print("== resumed run ==")
    resumed = _run_to_completion(events, ckpt)

    records = read_events(events)  # validates framing + seq
    kinds = [r["kind"] for r in records]
    seqs = [r["seq"] for r in records]
    assert seqs == list(range(len(records))), (
        "event log has sequence gaps across the crash"
    )
    assert "service_resume" in kinds, "no service_resume event"
    assert kinds.count("service_start") == 1, (
        "resume restarted instead of resuming"
    )
    assert kinds[-1] == "service_end", kinds[-3:]

    final = load_service_checkpoint(ckpt)
    assert final["position"] == reference["statements"], (
        f"resume stopped at {final['position']} of "
        f"{reference['statements']}"
    )
    assert resumed["final_index"] == reference["final_index"], (
        f"resumed run picked C{resumed['final_index']}, reference "
        f"picked C{reference['final_index']}"
    )
    assert len(resumed["retunes"]) == ref_retunes, (
        f"resumed run made {len(resumed['retunes'])} retunes, "
        f"reference made {ref_retunes}"
    )

    print(
        f"OK: resumed to final C{resumed['final_index']} "
        f"({len(resumed['retunes'])} retunes, {len(records)} events, "
        f"artifacts in {workdir})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
