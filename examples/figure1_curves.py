"""Reproduce Figure 1's curves and draw them in the terminal.

Runs a scaled-down version of the paper's first Monte Carlo experiment
(true probability of correct selection vs sample size, for Independent
and Delta Sampling) and renders the curves as an ASCII chart, plus a
CSV export for external plotting.

Run:  python examples/figure1_curves.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    SchemeSpec,
    ascii_chart,
    find_pair,
    format_series,
    prcs_curve,
    tpcd_setup,
    write_series_csv,
)

BUDGETS = [60, 100, 160, 240, 400]
TRIALS = 60  # the paper uses 5000; this is a quick demonstration


def main() -> None:
    setup = tpcd_setup(n_queries=2_000, k=12, seed=0)
    worse, better = find_pair(setup, 0.07, overlap_below=0.5)
    matrix = setup.matrix[:, [worse, better]]
    tids = setup.workload.template_ids
    totals = setup.true_totals
    diff = (totals[worse] - totals[better]) / totals[worse]
    print(f"configuration pair: {diff:.1%} apart, "
          f"N={setup.workload.size} queries\n")

    series = {}
    for spec in (SchemeSpec("independent", "none"),
                 SchemeSpec("delta", "none")):
        series[spec.label] = prcs_curve(
            matrix, tids, spec, BUDGETS, trials=TRIALS, seed=3
        )

    print(format_series("optimizer calls", BUDGETS, series,
                        title=f"true Pr(CS), {TRIALS} trials/point"))
    print()
    print(ascii_chart(
        BUDGETS, series, width=56, height=14, y_min=0.4,
        title="Figure 1 (scaled): Pr(CS) vs optimizer calls",
    ))

    path = write_series_csv(
        "figure1_curves.csv", "optimizer_calls", BUDGETS, series
    )
    print(f"\nseries written to {path}")


if __name__ == "__main__":
    main()
