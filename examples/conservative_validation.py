"""Validating the CLT machinery on a skewed workload (Section 6).

Sampling-based Pr(CS) estimates lean on two assumptions: the CLT
applies at the chosen sample size, and the sample variance estimates
the population variance.  Heavy-tailed query costs can break both —
"a single very large outlier value may dominate both the variance and
the skew of the cost distribution."

This example derives per-query cost intervals from the base and ideal
configurations, bounds the population variance and skew with the
Section 6.2 dynamic programs, applies the modified Cochran rule
``n > 28 + 25 G1^2`` to find a *certified* minimum sample size, and
shows the conservative variance bound in action: Pr(CS) computed with
``sigma^2_max`` never overstates confidence.

Run:  python examples/conservative_validation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostBounder,
    WhatIfOptimizer,
    base_configuration,
    build_pool,
    enumerate_configurations,
    generate_tpcd_workload,
    max_skew_bound,
    max_variance_bound,
    validate_sample_size,
)
from repro.core import pairwise_prcs
from repro.experiments import format_kv
from repro.workload import tpcd_schema


def main() -> None:
    schema = tpcd_schema(scale_factor=0.1)
    workload = generate_tpcd_workload(1_000, seed=6, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(workload.queries[:250], optimizer)
    # A realistic tuning session: the candidates share a set of
    # always-present structures (the most broadly useful indexes), so
    # the base configuration is substantive and the derived cost
    # intervals are tight.
    from repro import Configuration

    common = sorted(
        pool.index_weights, key=pool.index_weights.get, reverse=True
    )[:12]
    shared = Configuration(common, name="shared")
    configs = enumerate_configurations(
        pool, 4, np.random.default_rng(8), base=shared, index_only=True
    )
    base = base_configuration(configs)
    union = configs[0]
    for cfg in configs[1:]:
        union = union.union(cfg)

    # --- derive certified cost intervals (2 calls per SELECT, 2 per
    #     DML template; Section 6.1) ---------------------------------
    bounder = CostBounder(optimizer, workload, base, union,
                          index_only=True)
    intervals = bounder.universal_intervals()
    widths = intervals.widths()
    print(format_kv({
        "queries": workload.size,
        "bounding optimizer calls": intervals.optimizer_calls,
        "median interval width": f"{np.median(widths):.1f}",
        "max interval width": f"{widths.max():.1f}",
    }, title="cost intervals (base vs ideal configuration)"))

    # --- bound variance and skew; apply the Cochran rule -------------
    rho = max(1.0, float(np.median(intervals.highs)) / 200)
    validation = validate_sample_size(
        intervals.lows, intervals.highs, rho=rho
    )
    print()
    print(format_kv({
        "rho": f"{rho:.2f}",
        "sigma^2_max (certified)": f"{validation.sigma2_max:,.0f}",
        "G1_max (conservative)": f"{validation.g1_max:.2f}",
        "certified minimum sample": validation.min_sample,
        "fraction of workload": f"{validation.required_fraction:.1%}",
    }, title="Section 6.2 bounds + modified Cochran rule"))
    if validation.min_sample and validation.min_sample >= workload.size:
        print("  -> at this small N the certified minimum exceeds the "
              "workload: evaluate exhaustively.  The required minimum "
              "is roughly N-independent, so the *fraction* shrinks as "
              "workloads grow (the paper's 4% at 13K vs 0.6% at 131K); "
              "see benchmarks/bench_sec6_cochran.py.")

    # --- conservative Pr(CS): substitute sigma^2_max for s^2 ---------
    true_costs = workload.cost_vector(optimizer, configs[0].union(base))
    n = min(workload.size // 2, validation.min_sample or 30)
    rng = np.random.default_rng(1)
    sample = true_costs[rng.choice(workload.size, n, replace=False)]
    N = workload.size
    gap = 0.05 * true_costs.sum()  # a hypothetical observed gap

    def estimator_variance(sigma2: float) -> float:
        return N**2 * sigma2 / n * (1 - n / N)

    optimistic = pairwise_prcs(gap, estimator_variance(
        float(sample.var(ddof=1))
    ))
    conservative = pairwise_prcs(gap, estimator_variance(
        validation.sigma2_max
    ))
    print()
    print(format_kv({
        "sample variance s^2": f"{sample.var(ddof=1):,.0f}",
        "Pr(CS) via s^2": f"{optimistic:.4f}",
        "Pr(CS) via sigma^2_max": f"{conservative:.4f}",
    }, title="conservative vs sample-variance Pr(CS) at the same gap"))
    print("\nThe certified bound can only lower the reported "
          "confidence — the guarantee direction the paper requires "
          "for physical design decisions.")
    assert conservative <= optimistic + 1e-12


if __name__ == "__main__":
    main()
