"""The paper's preprocessing pipeline: workload table + sampling.

Section 5 ("Preprocessing"): "For workloads large enough that the
query strings do not fit into memory, we write all query strings to a
database table, which also contains the query's ID and template...
Now we can obtain a random sample of size n from this table by
computing a random permutation of the query IDs and then (using a
single scan) reading the queries corresponding to the first n IDs into
memory.  This approach trivially extends to stratified sampling."

This example traces a workload, stores it in a SQLite workload table
(statements as SQL text plus template id), and then drives the
comparison primitive *from the store*: sampled ids are read back, the
text re-parsed and costed on demand — the workload never needs to be
resident in memory at once.

Run:  python examples/workload_table_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ConfigurationSelector,
    SelectorOptions,
    WhatIfOptimizer,
    build_pool,
    enumerate_configurations,
    generate_tpcd_workload,
)
from repro.core.sources import CostSource
from repro.workload import WorkloadStore, tpcd_schema


class StoreCostSource(CostSource):
    """A cost source that rehydrates statements from the workload table.

    Mimics the out-of-core regime: only sampled statements are read
    (and parsed) from the store; costs are produced by live what-if
    calls.
    """

    def __init__(self, store, n_queries, configurations, optimizer):
        self._store = store
        self._n = n_queries
        self._configs = list(configurations)
        self._optimizer = optimizer
        self._baseline = optimizer.calls
        self.statements_read = 0

    @property
    def n_queries(self) -> int:
        return self._n

    @property
    def n_configs(self) -> int:
        return len(self._configs)

    def cost(self, query_idx: int, config_idx: int) -> float:
        ((_id, query),) = self._store.read([query_idx])
        self.statements_read += 1
        return self._optimizer.cost(query, self._configs[config_idx])

    @property
    def calls(self) -> int:
        return self._optimizer.calls - self._baseline


def main() -> None:
    schema = tpcd_schema(scale_factor=0.1)
    workload = generate_tpcd_workload(2_000, seed=5, schema=schema)
    optimizer = WhatIfOptimizer(schema)

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "workload.db")
        with WorkloadStore(db_path) as store:
            store.load(workload)
            size_kb = Path(db_path).stat().st_size / 1024
            print(f"workload table: {store.count()} statements, "
                  f"{len(store.template_counts())} templates, "
                  f"{size_kb:.0f} KiB on disk")

            pool = build_pool(workload.queries[:300], optimizer)
            configs = enumerate_configurations(
                pool, 4, np.random.default_rng(9)
            )

            source = StoreCostSource(
                store, store.count(), configs, optimizer
            )
            result = ConfigurationSelector(
                source,
                workload.template_ids,
                SelectorOptions(alpha=0.9, consecutive=5),
                rng=np.random.default_rng(13),
            ).run()

            print(f"\nselected {configs[result.best_index].name} with "
                  f"Pr(CS)={result.prcs:.3f}")
            print(f"statements read from the table: "
                  f"{source.statements_read} "
                  f"({source.statements_read / store.count():.1%} of "
                  "the stored workload)")
            print(f"optimizer calls: {result.optimizer_calls}")

            # Ground truth, the expensive way.
            totals = [workload.total_cost(optimizer, c) for c in configs]
            best = int(np.argmin(totals))
            print(f"ground truth: {configs[best].name} -> "
                  f"{'correct' if best == result.best_index else 'WRONG'}")


if __name__ == "__main__":
    main()
