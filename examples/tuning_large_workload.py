"""Physical design tuning at scale: compression vs sampling.

The paper's §7.3 scenario as an end-to-end application: a large traced
workload must be tuned, but tuning on all of it is too expensive.  We
compare three ways of shrinking the training workload —

* cost-based compression [20] (keep the top-X% most expensive queries),
* clustering compression [5] (weighted representatives per cluster),
* a uniform sample (what the paper's Delta-sample reduces to for
  tuning purposes)

— and measure the improvement each tuned design achieves on the FULL
workload, plus what the preprocessing cost.

Run:  python examples/tuning_large_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Configuration,
    GreedyTuner,
    WhatIfOptimizer,
    compress_by_clustering,
    compress_by_cost,
    compress_random,
    evaluate_configuration,
    generate_tpcd_workload,
)
from repro.experiments import format_table
from repro.workload import tpcd_schema


def main() -> None:
    schema = tpcd_schema(scale_factor=0.1)
    workload = generate_tpcd_workload(800, seed=21, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    current = Configuration(name="current")
    current_costs = workload.cost_vector(optimizer, current)
    print(f"workload: {workload.size} statements, "
          f"{workload.template_count} templates, total cost "
          f"{current_costs.sum():,.0f}\n")

    by_cost = compress_by_cost(current_costs, 0.2)
    clustered = compress_by_clustering(
        current_costs, workload.template_ids, by_cost.size
    )
    sampled = compress_random(
        workload.size, by_cost.size, np.random.default_rng(0)
    )

    tuner = GreedyTuner(optimizer, max_structures=6)
    rows = []
    for cw in (by_cost, clustered, sampled):
        result = tuner.tune(
            [workload.queries[i] for i in cw.indices],
            weights=cw.weights,
        )
        quality = evaluate_configuration(
            workload, optimizer, result.configuration
        )
        covered = len(np.unique(workload.template_ids[cw.indices]))
        rows.append([
            cw.method,
            cw.size,
            f"{covered}/{workload.template_count}",
            f"{quality.improvement:.1%}",
            f"{cw.preprocessing_operations:,}",
        ])

    print(format_table(
        ["training workload", "size", "templates",
         "full-workload improvement", "preprocessing ops"],
        rows,
        title="Tuning quality by training-workload construction",
    ))
    print("\nExpected shape (paper §7.3): cost-based compression covers "
          "few templates and tunes worst; clustering and sampling are "
          "comparable, but clustering pays quadratic preprocessing.")


if __name__ == "__main__":
    main()
