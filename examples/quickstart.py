"""Quickstart: compare two physical designs with probabilistic guarantees.

Builds the synthetic TPC-D database, traces a workload, enumerates a
handful of candidate configurations the way a design tool would, and
then uses the paper's comparison primitive to pick the best one — with
a target probability of correct selection — while issuing a small
fraction of the optimizer calls an exhaustive comparison would need.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConfigurationSelector,
    OptimizerCostSource,
    SelectorOptions,
    WhatIfOptimizer,
    build_pool,
    enumerate_configurations,
    generate_tpcd_workload,
)
from repro.workload import tpcd_schema


def main() -> None:
    # 1. The database and a traced workload.
    schema = tpcd_schema(scale_factor=0.1)
    workload = generate_tpcd_workload(1_500, seed=0, schema=schema)
    print(f"workload: {workload.size} statements, "
          f"{workload.template_count} templates, "
          f"{workload.dml_fraction():.0%} DML")

    # 2. A what-if optimizer and candidate configurations.
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(workload.queries[:300], optimizer)
    configurations = enumerate_configurations(
        pool, k=6, rng=np.random.default_rng(1)
    )
    print(f"candidates: {len(configurations)} configurations from a "
          f"pool of {pool.size} structures")

    # 3. The comparison primitive (Algorithm 1): Delta Sampling +
    #    progressive stratification, alpha = 90%.
    optimizer.reset_counters()
    source = OptimizerCostSource(workload, configurations, optimizer)
    selector = ConfigurationSelector(
        source,
        workload.template_ids,
        SelectorOptions(alpha=0.9, delta=0.0),
        rng=np.random.default_rng(2),
    )
    result = selector.run()

    chosen = configurations[result.best_index]
    exhaustive = workload.size * len(configurations)
    print()
    print(f"selected       : {chosen.name} "
          f"({len(chosen.indexes)} indexes, {len(chosen.views)} views)")
    print(f"Pr(CS)         : {result.prcs:.3f} (target 0.90)")
    print(f"optimizer calls: {result.optimizer_calls} "
          f"({result.optimizer_calls / exhaustive:.1%} of the "
          f"{exhaustive} an exhaustive comparison needs)")
    print(f"eliminated     : {len(result.eliminated)} configurations "
          f"dropped early")

    # 4. Verify against ground truth (the expensive way).
    totals = [workload.total_cost(optimizer, cfg)
              for cfg in configurations]
    truly_best = int(np.argmin(totals))
    verdict = "correct" if truly_best == result.best_index else "WRONG"
    print(f"ground truth   : best is {configurations[truly_best].name} "
          f"-> selection {verdict}")


if __name__ == "__main__":
    main()
