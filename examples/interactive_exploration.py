"""Interactive exploration: quickly shortlist promising designs.

The paper's first use case (§1): "fast interactive exploratory analysis
of the configuration space, allowing the DB administrator to quickly
find promising candidates for full evaluation."

This example enumerates a larger candidate set over the CRM database,
then uses the primitive in a tournament: a cheap low-alpha pass prunes
the field to a shortlist; the shortlist is compared again at high
alpha; only the finalists get a full exhaustive evaluation.  The total
optimizer-call budget is printed at every stage.

Run:  python examples/interactive_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConfigurationSelector,
    OptimizerCostSource,
    SelectorOptions,
    WhatIfOptimizer,
    build_pool,
    enumerate_configurations,
    generate_crm_workload,
)
from repro.workload import crm_schema


def main() -> None:
    schema = crm_schema()
    workload = generate_crm_workload(1_200, seed=4, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    print(f"CRM: {len(schema)} tables; workload of {workload.size} "
          f"statements over {workload.template_count} templates")

    pool = build_pool(workload.queries[:300], optimizer)
    candidates = enumerate_configurations(
        pool, k=20, rng=np.random.default_rng(3)
    )
    print(f"exploring {len(candidates)} candidate configurations\n")

    # --- stage 1: cheap pruning pass (low alpha, generous delta) -----
    optimizer.reset_counters()
    source = OptimizerCostSource(workload, candidates, optimizer)
    rough = ConfigurationSelector(
        source,
        workload.template_ids,
        SelectorOptions(alpha=0.75, consecutive=3,
                        elimination_threshold=0.95),
        rng=np.random.default_rng(10),
    ).run()
    stage1_calls = rough.optimizer_calls

    survivors = [
        i for i in range(len(candidates)) if i not in rough.eliminated
    ]
    order = np.argsort(rough.estimates[survivors])
    shortlist = [survivors[i] for i in order[: min(4, len(survivors))]]
    print(f"stage 1 (alpha=75%): {stage1_calls} calls -> shortlist "
          f"{[candidates[i].name for i in shortlist]}")

    # --- stage 2: careful comparison of the shortlist ----------------
    finalists = [candidates[i] for i in shortlist]
    optimizer.reset_counters()
    source2 = OptimizerCostSource(workload, finalists, optimizer)
    careful = ConfigurationSelector(
        source2,
        workload.template_ids,
        SelectorOptions(alpha=0.95, consecutive=10),
        rng=np.random.default_rng(11),
    ).run()
    stage2_calls = careful.optimizer_calls
    winner = finalists[careful.best_index]
    print(f"stage 2 (alpha=95%): {stage2_calls} calls -> "
          f"{winner.name} at Pr(CS)={careful.prcs:.3f}")

    # --- stage 3: exhaustive confirmation of the winner only ---------
    optimizer.reset_counters()
    winner_cost = workload.total_cost(optimizer, winner)
    stage3_calls = optimizer.calls
    print(f"stage 3 (exhaustive, winner only): {stage3_calls} calls -> "
          f"Cost(WL) = {winner_cost:,.0f}")

    exhaustive_all = workload.size * len(candidates)
    used = stage1_calls + stage2_calls + stage3_calls
    print(f"\ntotal: {used:,} optimizer calls vs {exhaustive_all:,} for "
          f"exhaustive evaluation of all candidates "
          f"({used / exhaustive_all:.1%}).")

    # Sanity: compare the winner against the true best.
    totals = workload.cost_matrix(optimizer, candidates).sum(axis=0)
    best = int(np.argmin(totals))
    gap = (totals[shortlist[careful.best_index]] - totals[best]) \
        / totals[best]
    print(f"ground truth: true best is {candidates[best].name}; "
          f"selected design is within {gap:.2%} of it.")


if __name__ == "__main__":
    main()
