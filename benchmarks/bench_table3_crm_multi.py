"""Table 3 — multiple-configuration selection on the CRM workload.

Same protocol as Table 2 (see bench_table2_tpcd_multi.py), on the CRM
database/trace.  Paper results:

    method          metric        k=50    k=100   k=500
    Delta-Sampling  true Pr(CS)   97.5%   94.4%   89.7%
                    Max Delta     1.7%    1.4%    0.8%
    No Strat.       true Pr(CS)   56.0%   37.5%   11.0%
                    Max Delta     10.53%  12.69%  6.5%
    Equal Alloc.    true Pr(CS)   71.1%   52.8%   17.0%
                    Max Delta     7.2%    5.8%    3.26%

The paper notes the primitive's true Pr(CS) *exceeds* alpha here
because the 10-consecutive-samples guard over-samples easy selection
problems (footnote 4).

Scale caveat: the CRM cost differences are dominated by a few heavy
statements (see Figure 4), so at our scaled N the primitive samples a
large fraction of the workload before reaching alpha.  The matched-
*queries* baselines then approach a census and trivially select
correctly — informative in the paper's small-m/N regime, not in ours.
The assertions therefore check the primitive's own contract (true
Pr(CS) tracks alpha) and its optimizer-call advantage (elimination
stops evaluating hopeless configurations, which the baselines cannot).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import crm_setup, format_table, multi_config_table

from _common import TABLE_K, TABLE_TRIALS, WL_SIZE

K_VALUES = tuple(
    k for k in (max(10, TABLE_K // 5), TABLE_K) if k <= TABLE_K
)


def test_table3_crm_multi_config(benchmark):
    rows_out = []
    results = {}
    for k in K_VALUES:
        setup = crm_setup(n_queries=WL_SIZE, k=k, seed=6)
        rows = multi_config_table(
            setup.matrix, setup.workload.template_ids,
            alpha=0.9, delta=0.0, trials=TABLE_TRIALS, seed=8,
        )
        results[k] = rows
        for row in rows:
            rows_out.append([
                row.method, f"k={k}",
                f"{row.true_prcs:.1%}",
                f"{row.max_delta_pct:.2f}%",
                f"{row.mean_calls:.0f}",
                f"{row.mean_queries:.0f}",
            ])

    print()
    print(format_table(
        ["method", "k", "True Pr(CS)", "Max Delta", "mean calls",
         "mean queries"],
        rows_out,
        title=f"Table 3 — CRM workload (alpha=90%, delta=0, "
              f"{TABLE_TRIALS} trials; paper uses 5000)",
    ))

    for k, rows in results.items():
        delta_row, nostrat_row, _equal_row = rows
        # The primitive's contract: true Pr(CS) tracks alpha (within
        # the +-1-trial granularity of the Monte Carlo).
        assert delta_row.true_prcs >= 0.9 - 2.0 / TABLE_TRIALS
        # And it spends fewer optimizer calls than evaluating the same
        # queries in every configuration (the baselines' cost); the
        # advantage grows with k as elimination prunes the field.
        assert delta_row.mean_calls < 0.8 * nostrat_row.mean_calls
    largest = max(results)
    assert results[largest][0].mean_calls < \
        0.2 * results[largest][1].mean_calls

    setup = crm_setup(n_queries=WL_SIZE, k=K_VALUES[0], seed=6)

    def one_table():
        return multi_config_table(
            setup.matrix, setup.workload.template_ids,
            alpha=0.9, trials=2, seed=1,
        )

    benchmark.pedantic(one_table, rounds=1, iterations=1)
