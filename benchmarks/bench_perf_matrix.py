"""Performance architecture — fingerprint caching + parallel Monte Carlo.

Two measurements, reported as one JSON blob (phase wall times, layered
cache hit rates, scaling table):

1. **Ground-truth matrix construction.**  The serial, un-fingerprinted
   optimizer (the historical code path, ``fingerprinting=False``)
   versus the batched builder over a fingerprinting optimizer, on a
   TPC-D-style workload against ``k`` tool-enumerated shared-core
   candidates (the Table 2/3 near-tie regime).  The matrices must be
   bit-identical, the optimizer-call counts equal (fingerprint sharing
   is wall-clock only, never a paper-metric saving), and the speedup at
   least ``REPRO_PERF_MIN_SPEEDUP`` (default 3x).

2. **Monte Carlo replay scaling.**  ``prcs_curve`` with 1 vs
   ``REPRO_PERF_WORKERS`` processes: results must be bit-identical;
   parallel efficiency is reported, and asserted only when the machine
   actually has that many CPUs.

Scale knobs (environment):

======================== ======= =================================
variable                 default meaning
======================== ======= =================================
``REPRO_PERF_WL``        600     workload statements
``REPRO_PERF_K``         12      candidate configurations (>= 8)
``REPRO_PERF_MIN_SPEEDUP`` 3.0   required matrix-build speedup
``REPRO_PERF_MC_TRIALS`` 48      Monte Carlo trials per budget
``REPRO_PERF_WORKERS``   4       parallel worker count
======================== ======= =================================
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager

import numpy as np

from repro.experiments import format_table
from repro.experiments.configs import _shared_core_base
from repro.experiments.monte_carlo import SchemeSpec
from repro.experiments.parallel import prcs_curve
from repro.experiments.profiling import PhaseTimer, cache_hit_report
from repro.optimizer import WhatIfOptimizer
from repro.optimizer.batch import cost_matrix_with_stats
from repro.physical import build_pool, enumerate_configurations
from repro.workload.tpcd import tpcd_generator, tpcd_schema

WL_SIZE = int(os.environ.get("REPRO_PERF_WL", "600"))
K = int(os.environ.get("REPRO_PERF_K", "12"))
MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "3.0"))
MC_TRIALS = int(os.environ.get("REPRO_PERF_MC_TRIALS", "48"))
WORKERS = int(os.environ.get("REPRO_PERF_WORKERS", "4"))
REPS = 2  # best-of reps per side, to damp scheduler noise


@contextmanager
def _no_gc():
    """Keep collector pauses out of the timed region (bench hygiene)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _setup():
    schema = tpcd_schema(scale_factor=0.1)
    workload = tpcd_generator(schema=schema, include_dml=True).generate(
        WL_SIZE, np.random.default_rng(0)
    )
    pool = build_pool(
        workload.queries[: min(300, WL_SIZE)],
        WhatIfOptimizer(schema),
        include_views=True,
    )
    configs = enumerate_configurations(
        pool, K, np.random.default_rng(0),
        base=_shared_core_base(pool, 6), min_indexes=1, max_indexes=5,
    )
    return schema, workload, configs


def test_perf_matrix_build_speedup(benchmark):
    assert K >= 8, "the acceptance regime requires k >= 8"
    timer = PhaseTimer()
    with timer.phase("setup"):
        schema, workload, configs = _setup()

    def build_legacy():
        opt = WhatIfOptimizer(schema, fingerprinting=False)
        with _no_gc():
            start = time.perf_counter()
            matrix = workload.cost_matrix(opt, configs)
            elapsed = time.perf_counter() - start
        return matrix, opt, elapsed

    def build_fast():
        opt = WhatIfOptimizer(schema)
        with _no_gc():
            start = time.perf_counter()
            matrix, stats = cost_matrix_with_stats(workload, configs, opt)
            elapsed = time.perf_counter() - start
        return matrix, opt, stats, elapsed

    with timer.phase("baseline_serial_unfingerprinted"):
        legacy, legacy_opt, t_base = build_legacy()
        for _ in range(REPS - 1):
            t_base = min(t_base, build_legacy()[2])
    with timer.phase("batched_fingerprinted"):
        fast, fast_opt, stats, t_fast = build_fast()
        for _ in range(REPS - 1):
            t_fast = min(t_fast, build_fast()[3])

    assert np.array_equal(legacy, fast), \
        "fingerprinted matrix must be bit-identical to the baseline"
    assert legacy_opt.calls == fast_opt.calls, \
        "caching layers must not change the paper's call accounting"
    speedup = t_base / t_fast

    report = {
        "n_queries": workload.size,
        "k": len(configs),
        "baseline_seconds": t_base,
        "batched_seconds": t_fast,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "build_stats": stats.as_dict(),
        "cache_report": cache_hit_report(fast_opt),
        "phases": timer.as_dict(),
    }
    print()
    print(format_table(
        ["builder", "seconds", "cells/s"],
        [
            ["serial unfingerprinted (seed path)", f"{t_base:.3f}",
             f"{workload.size * len(configs) / t_base:,.0f}"],
            ["batched fingerprinted", f"{t_fast:.3f}",
             f"{workload.size * len(configs) / t_fast:,.0f}"],
        ],
        title=f"ground-truth matrix build (N={workload.size}, "
              f"k={len(configs)}) — speedup {speedup:.2f}x",
    ))
    print(json.dumps(report, indent=2, default=float))

    assert speedup >= MIN_SPEEDUP, (
        f"matrix-build speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.1f}x"
    )
    benchmark.pedantic(
        lambda: cost_matrix_with_stats(
            workload, configs, WhatIfOptimizer(schema)
        ),
        rounds=1, iterations=1,
    )


def test_perf_parallel_monte_carlo(benchmark):
    timer = PhaseTimer()
    with timer.phase("setup"):
        schema, workload, configs = _setup()
        matrix, _stats = cost_matrix_with_stats(
            workload, configs, WhatIfOptimizer(schema)
        )
        tids = workload.template_ids
    spec = SchemeSpec(scheme="delta", stratify="progressive")
    budgets = [80, 160, 240]

    def run(workers):
        start = time.perf_counter()
        curve = prcs_curve(
            matrix, tids, spec, budgets, trials=MC_TRIALS, seed=17,
            workers=workers,
        )
        return curve, time.perf_counter() - start

    with timer.phase("mc_serial"):
        serial_curve, t_serial = run(1)
    rows = [["1", f"{t_serial:.3f}", "1.00", "-"]]
    with timer.phase("mc_parallel"):
        parallel_curve, t_parallel = run(WORKERS)
    assert np.array_equal(serial_curve, parallel_curve), \
        f"workers={WORKERS} must be bit-identical to serial"
    scaling = t_serial / t_parallel
    efficiency = scaling / WORKERS
    rows.append([str(WORKERS), f"{t_parallel:.3f}", f"{scaling:.2f}",
                 f"{efficiency:.0%}"])

    print()
    print(format_table(
        ["workers", "seconds", "speedup", "efficiency"],
        rows,
        title=f"parallel Monte Carlo replay ({MC_TRIALS} trials x "
              f"{len(budgets)} budgets, bit-identical)",
    ))
    print(json.dumps({
        "trials": MC_TRIALS,
        "budgets": budgets,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "workers": WORKERS,
        "scaling": scaling,
        "efficiency": efficiency,
        "cpu_count": os.cpu_count(),
        "phases": timer.as_dict(),
    }, indent=2, default=float))

    # Wall-clock scaling is only a fair ask when the CPUs exist.
    if (os.cpu_count() or 1) >= WORKERS and MC_TRIALS >= 32:
        assert scaling >= 0.5 * WORKERS, (
            f"parallel scaling {scaling:.2f}x on {os.cpu_count()} CPUs "
            f"is far from linear in {WORKERS} workers"
        )
    benchmark.pedantic(lambda: run(WORKERS), rounds=1, iterations=1)
