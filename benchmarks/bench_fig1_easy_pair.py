"""Figure 1 — Monte Carlo simulation of Pr(CS), easy TPC-D pair.

Paper setup: TPC-D workload (~13K queries), two configurations with a
significant cost difference (~7%) and different structure sets (one
with views, one index-only); delta = 0.  Each scheme runs to a fixed
sample size; 5000 Monte Carlo repetitions estimate the *true*
probability of selecting the correct configuration.

Paper findings (Figure 1):
* <1% of the exhaustive 2N optimizer calls suffices for near-certain
  selection;
* Delta Sampling significantly outperforms Independent Sampling at
  small sample sizes;
* progressive stratification adds little at these tiny sample sizes.

Scaled-down defaults: N and trial count via REPRO_WL_SIZE /
REPRO_MC_TRIALS (see benchmarks/_common.py).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import SchemeSpec, format_series, prcs_curve

from _common import (
    FIGURE_BUDGETS,
    MC_TRIALS,
    describe_pair,
    easy_tpcd_pair,
    pair_matrix,
)

SCHEMES = (
    SchemeSpec("independent", "none"),
    SchemeSpec("delta", "none"),
    SchemeSpec("independent", "progressive"),
    SchemeSpec("delta", "progressive"),
)


def test_fig1_easy_pair_prcs(benchmark):
    setup, worse, better = easy_tpcd_pair()
    matrix = pair_matrix(setup, worse, better)
    tids = setup.workload.template_ids

    series = {}
    for spec in SCHEMES:
        trials = MC_TRIALS if spec.stratify == "none" else \
            max(20, MC_TRIALS // 4)
        series[spec.label] = prcs_curve(
            matrix, tids, spec, FIGURE_BUDGETS, trials=trials, seed=11
        )

    print()
    print(f"Figure 1 — {describe_pair(setup, worse, better)}")
    print(format_series(
        "optimizer calls", list(FIGURE_BUDGETS), series,
        title="Monte Carlo simulation of Pr(CS) "
              f"({MC_TRIALS} trials/point; paper uses 5000)",
    ))

    exhaustive_calls = 2 * setup.workload.size
    print(f"exhaustive evaluation would need {exhaustive_calls} calls; "
          f"near-certain selection at <= {FIGURE_BUDGETS[-1]} "
          f"({FIGURE_BUDGETS[-1] / exhaustive_calls:.1%}).")

    # Shape assertions from the paper.
    ds = series[SchemeSpec("delta", "none").label]
    is_ = series[SchemeSpec("independent", "none").label]
    assert ds[0] >= is_[0]                     # DS beats IS early
    assert ds[-1] >= 0.9                       # near-certainty reached

    rng = np.random.default_rng(0)
    from repro.experiments import select_fixed_budget

    benchmark.pedantic(
        select_fixed_budget,
        args=(matrix, tids, SchemeSpec("delta", "progressive"),
              FIGURE_BUDGETS[2], rng),
        rounds=3,
        iterations=1,
    )
