"""Table 1 — overhead of approximating sigma^2_max.

Paper (Table 1, Pentium 4 / 2.8 GHz, TPC-D workload of N = 100K):

    rho = 10   : 0.4 sec
    rho = 1    : 5.2 sec
    rho = 1/10 : 53  sec

We time the same computation on 100K template-clustered cost intervals
(the realistic regime: queries of a template share rounded bounds).
Absolute times differ (Python vs the paper's C++ prototype plus our
grouped-DP optimization); the reproduced *shape* is the linear growth
of the state space — and hence runtime — in ``1/rho``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bounds import max_variance_bound
from repro.experiments import format_table

N = 100_000
RHOS = (10.0, 1.0, 0.1)


def _intervals() -> tuple:
    rng = np.random.default_rng(42)
    template = rng.integers(0, 25, N)
    base = np.round(rng.exponential(50, 25), 0)[template]
    width = np.round(rng.exponential(8, 25), 0)[template]
    return base, base + width


def test_table1_variance_bound_overhead(benchmark):
    lows, highs = _intervals()

    rows = []
    results = {}
    for rho in RHOS:
        start = time.perf_counter()
        result = max_variance_bound(lows, highs, rho,
                                    max_states=200_000_000)
        elapsed = time.perf_counter() - start
        results[rho] = (elapsed, result)
        rows.append([
            f"rho = {rho:g}",
            f"{elapsed:.2f} sec",
            f"{result.states:,}",
            f"{result.sigma2_hat:.1f}",
            f"{result.theta:.1f}",
        ])
    print()
    print(format_table(
        ["setting", "Time(sigma2_max)", "DP states", "sigma2_hat",
         "theta"],
        rows,
        title=f"Table 1 — overhead of approximating sigma^2_max "
              f"(N = {N:,})",
    ))

    # Shape check: runtime grows with 1/rho (state space is linear in
    # it); allow generous slack for constant overheads.
    assert results[1.0][1].states > results[10.0][1].states
    assert results[0.1][1].states > results[1.0][1].states

    benchmark.pedantic(
        max_variance_bound,
        args=(lows, highs, 10.0),
        kwargs={"max_states": 200_000_000},
        rounds=3,
        iterations=1,
    )
