"""Section 7.3 — adaptivity: required sample size varies per problem.

Paper: "We have observed in experiments that the fraction of a workload
required for accurate selection varies significantly for different sets
of candidate configurations.  Thus choosing the sensitivity parameter
incorrectly has significant impact on tuning quality and speed.  Our
algorithm, in contrast, offers a principled way of adjusting the sample
size online."

We run the adaptive primitive (alpha = 90%) against several candidate
configuration *pairs* of the same workload — from easy (large cost gap)
to hard (near tie) — and report the fraction of the workload each run
sampled.  The reproduced shape: the online-chosen sample size spans a
wide range, which no up-front compression parameter could match.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConfigurationSelector, MatrixCostSource, \
    SelectorOptions
from repro.experiments import format_table, tpcd_setup

from _common import WL_SIZE


def test_sec73_adaptive_sample_sizes(benchmark):
    setup = tpcd_setup(n_queries=WL_SIZE, k=12, seed=0)
    totals = setup.true_totals
    order = np.argsort(totals)
    best = int(order[0])

    # Pair the best configuration with rivals of increasing distance.
    rivals = [int(order[i]) for i in (1, len(order) // 2, len(order) - 1)]
    rows = []
    fractions = []
    for rival in rivals:
        matrix = setup.matrix[:, [best, rival]]
        gap_pct = (totals[rival] - totals[best]) / totals[rival] * 100
        sampled = []
        for trial in range(5):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, setup.workload.template_ids,
                SelectorOptions(alpha=0.9, consecutive=5,
                                reeval_every=4),
                rng=np.random.default_rng(trial),
            ).run()
            sampled.append(result.queries_sampled)
        frac = float(np.mean(sampled)) / setup.workload.size
        fractions.append(frac)
        rows.append([
            f"{gap_pct:.2f}%",
            f"{np.mean(sampled):.0f}",
            f"{frac:.1%}",
        ])

    print()
    print(format_table(
        ["true cost gap", "mean queries sampled", "workload fraction"],
        rows,
        title=f"Section 7.3 — adaptive sample sizes (alpha=90%, "
              f"N={setup.workload.size})",
    ))
    print("paper: the required fraction varies significantly across "
          "configuration sets; the primitive adapts online while "
          "compression parameters are fixed up-front.")

    # Hard pairs must need a substantially larger fraction than easy.
    assert max(fractions) > 2 * min(fractions)

    matrix = setup.matrix[:, [best, rivals[-1]]]

    def one_run():
        source = MatrixCostSource(matrix)
        return ConfigurationSelector(
            source, setup.workload.template_ids,
            SelectorOptions(alpha=0.9, consecutive=5, reeval_every=4),
            rng=np.random.default_rng(0),
        ).run()

    benchmark.pedantic(one_run, rounds=3, iterations=1)
