"""Resilience layer acceptance: zero-fault overhead, retry cost.

Two guarantees from docs/resilience.md are pinned with numbers:

1. **Zero-fault transparency** — wrapping the cost source in
   `ResilientCostSource` with no faults firing changes nothing: same
   best index, same float estimates, same distinct-call count, and
   negligible wall-clock overhead (the wrapper adds one try/except and
   two clock reads per batch).
2. **Recovered faults are invisible to the statistics** — at a 10%
   transient/slow fault rate every cell of the rate x mode matrix
   completes bit-identically to the no-fault baseline with a
   distinct-call ratio of exactly 1.000; the overhead is retries and
   backoff, both reported, neither touching the sample.

Scale via ``REPRO_RESILIENCE_WL`` (workload size, default 400).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import ConfigurationSelector, MatrixCostSource, \
    SelectorOptions
from repro.experiments import format_kv, format_resilience_report, \
    resilience_experiment
from repro.experiments.faults import _synthetic_workload
from repro.faults import FaultPolicy, ResilientCostSource

WL_SIZE = int(os.environ.get("REPRO_RESILIENCE_WL", "400"))

OPTIONS = SelectorOptions(
    alpha=0.9, scheme="delta", stratify="progressive", n_min=8,
    consecutive=3, eliminate=True, reeval_every=2,
)


def _select(source, template_ids, seed=123):
    selector = ConfigurationSelector(
        source, template_ids, OPTIONS, rng=np.random.default_rng(seed)
    )
    return selector.run()


def _snapshot(result):
    return (
        int(result.best_index),
        float(result.prcs).hex(),
        int(result.optimizer_calls),
        result.terminated_by,
        tuple(float(x).hex() for x in result.estimates),
    )


def test_resilience(benchmark):
    matrix, template_ids = _synthetic_workload(WL_SIZE, 16, 5, seed=123)

    # 1. zero-fault transparency: decisions and calls, then wall clock.
    raw_source = MatrixCostSource(matrix)
    raw_result = _select(raw_source, template_ids)
    wrapped_source = ResilientCostSource(
        MatrixCostSource(matrix), FaultPolicy()
    )
    wrapped_result = _select(wrapped_source, template_ids)
    assert _snapshot(wrapped_result) == _snapshot(raw_result)
    assert wrapped_source.calls == raw_source.calls

    def _time(make_source, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            source = make_source()
            start = time.perf_counter()
            _select(source, template_ids)
            best = min(best, time.perf_counter() - start)
        return best

    raw_s = _time(lambda: MatrixCostSource(matrix))
    wrapped_s = _time(
        lambda: ResilientCostSource(MatrixCostSource(matrix),
                                    FaultPolicy())
    )
    overhead = wrapped_s / raw_s if raw_s > 0 else 1.0

    # 2. the rate x mode matrix (shared helper with `repro faults`).
    report = resilience_experiment(
        n_queries=WL_SIZE, n_templates=16, k=5, seed=123
    )

    print()
    print(format_kv(
        {
            "selection wall (raw source)": f"{raw_s * 1e3:.1f} ms",
            "selection wall (wrapped)": f"{wrapped_s * 1e3:.1f} ms",
            "overhead": f"{overhead:.3f}x",
            "decisions": "bit-identical",
            "distinct calls": f"{wrapped_source.calls} (ratio 1.000)",
        },
        title="Zero-fault wrapper overhead",
    ))
    print()
    print(format_resilience_report(report))

    # Recovered faults may cost retries, never samples: every
    # transient/slow cell completes bit-identically at call ratio
    # 1.000 (injection rates include 10%).
    recovered = [
        c for c in report.cases if c.mode in ("transient", "slow")
    ]
    assert recovered, "experiment produced no recoverable cells"
    for case in recovered:
        assert case.completed and not case.exhausted, (
            f"{case.mode}@{case.rate}: {case.error}"
        )
        assert case.identical, (
            f"{case.mode}@{case.rate} diverged from the baseline"
        )
        assert case.distinct_calls == report.baseline_calls, (
            f"{case.mode}@{case.rate}: {case.distinct_calls} calls "
            f"vs baseline {report.baseline_calls}"
        )
    ten_pct = [c for c in recovered if c.rate >= 0.1]
    assert ten_pct, "matrix does not include the 10% fault rate"
    assert any(c.retries > 0 for c in ten_pct), (
        "10% transient faults should require retries"
    )

    # Generous bound: the wrapper is two clock reads and a try/except
    # per batch; anything past 1.5x means per-call work crept in.
    assert overhead < 1.5, f"wrapper overhead {overhead:.2f}x"

    def one_wrapped_run():
        return _select(
            ResilientCostSource(MatrixCostSource(matrix), FaultPolicy()),
            template_ids,
        )

    benchmark.pedantic(one_wrapped_run, rounds=3, iterations=1)
