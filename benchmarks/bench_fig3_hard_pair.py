"""Figure 3 — Monte Carlo simulation of Pr(CS), hard TPC-D pair.

Paper setup: same TPC-D workload, but two configurations that are
"significantly harder to distinguish (difference in cost <= 2%)" and
that "share a significant number of design structures (both
configurations are index-only)".

Paper findings:
* Delta Sampling outperforms Independent Sampling *by a bigger margin*
  than on the easy pair, because shared structures raise the
  covariance between the two cost distributions;
* with the larger sample sizes this problem needs, stratification
  significantly improves Independent Sampling.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import SchemeSpec, format_series, prcs_curve

from _common import MC_TRIALS, describe_pair, hard_tpcd_pair, pair_matrix

BUDGETS = (100, 200, 400, 800, 1600)

SCHEMES = (
    SchemeSpec("independent", "none"),
    SchemeSpec("delta", "none"),
    SchemeSpec("independent", "progressive"),
    SchemeSpec("delta", "progressive"),
)


def test_fig3_hard_pair_prcs(benchmark):
    setup, worse, better = hard_tpcd_pair()
    matrix = pair_matrix(setup, worse, better)
    tids = setup.workload.template_ids

    # Correlation of per-query costs across the two configurations —
    # the §4.2 covariance that Delta Sampling exploits.
    corr = float(np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1])

    series = {}
    for spec in SCHEMES:
        trials = MC_TRIALS if spec.stratify == "none" else \
            max(20, MC_TRIALS // 4)
        series[spec.label] = prcs_curve(
            matrix, tids, spec, BUDGETS, trials=trials, seed=31
        )

    print()
    print(f"Figure 3 — {describe_pair(setup, worse, better)}; "
          f"cross-config cost correlation={corr:.3f}")
    print(format_series(
        "optimizer calls", list(BUDGETS), series,
        title="Monte Carlo simulation of Pr(CS), hard pair "
              f"({MC_TRIALS} trials/point)",
    ))

    ds = series[SchemeSpec("delta", "none").label]
    is_ = series[SchemeSpec("independent", "none").label]
    # DS must dominate IS over the sweep (bigger margin than fig 1).
    assert np.mean(ds) >= np.mean(is_)
    assert corr > 0.5  # high covariance regime, as the paper requires

    rng = np.random.default_rng(2)
    from repro.experiments import select_fixed_budget

    benchmark.pedantic(
        select_fixed_budget,
        args=(matrix, tids, SchemeSpec("delta", "none"), BUDGETS[2], rng),
        rounds=5,
        iterations=1,
    )
