"""Figure 2 — progressive vs up-front fine stratification.

Paper setup: same easy TPC-D pair as Figure 1, but both sampling
schemes also run with the workload *pre-partitioned into one stratum
per query template*.  Finding: "for the fine stratification and small
sample sizes, the estimates within each stratum are not normal and thus
the probability of correct selection is significantly lower.  For large
sample sizes, the accuracy of the fine stratification is comparable."

With L templates and a budget of m << L drawn queries, most strata
contribute zero or one sample, so the fine-stratified estimator leans
on fallback means — the small-sample failure mode.  We therefore sweep
budgets from below one-call-per-template upward, on the *hard*
(index-only) pair, whose per-template cost differences carry opposing
signs — the regime where missing strata genuinely mislead.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import SchemeSpec, format_series, prcs_curve

from _common import MC_TRIALS, describe_pair, hard_tpcd_pair, pair_matrix

#: Smaller budgets than Figure 1: the interesting regime is
#: m = budget/k near or below the template count (~22).
BUDGETS = (12, 20, 32, 60, 120, 400)


def test_fig2_fine_vs_progressive(benchmark):
    setup, worse, better = hard_tpcd_pair()
    matrix = pair_matrix(setup, worse, better)
    tids = setup.workload.template_ids
    n_templates = setup.workload.template_count

    series = {}
    for spec in (
        SchemeSpec("delta", "fine"),
        SchemeSpec("delta", "progressive"),
        SchemeSpec("independent", "fine"),
        SchemeSpec("independent", "progressive"),
    ):
        trials = MC_TRIALS if spec.stratify == "fine" else \
            max(20, MC_TRIALS // 4)
        series[spec.label] = prcs_curve(
            matrix, tids, spec, BUDGETS, trials=trials, seed=23,
            n_min=5,
        )

    print()
    print(f"Figure 2 — {describe_pair(setup, worse, better)}; "
          f"{n_templates} templates -> {n_templates} fine strata")
    print(format_series(
        "optimizer calls", list(BUDGETS), series,
        title="Progressive vs fine stratification "
              f"({MC_TRIALS} trials/point)",
    ))

    fine = series[SchemeSpec("delta", "fine").label]
    # Large sample sizes: fine stratification catches up (paper: the
    # accuracy becomes comparable).
    assert fine[-1] >= 0.9
    # Small sample sizes (m below the stratum count): fine
    # stratification is far from its own large-sample accuracy — the
    # Figure 2 penalty.
    assert fine[0] <= fine[-1] - 0.2

    rng = np.random.default_rng(1)
    from repro.experiments import select_fixed_budget

    benchmark.pedantic(
        select_fixed_budget,
        args=(matrix, tids, SchemeSpec("delta", "fine"), BUDGETS[1], rng),
        rounds=5,
        iterations=1,
    )
