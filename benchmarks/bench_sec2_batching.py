"""Section 2 (related work) — batch-means selection vs the primitive.

The paper dismisses classical statistical-selection-with-batching on
cost grounds: "they require a large number of initial measurements
(according to [15], batch sizes of over 1000 measurements are common),
thereby nullifying the efficiency gain due to sampling."

This bench measures that claim on the Figure 1 pair: both methods
reach (near-)certain selections, but the batching baseline's optimizer
-call demand is fixed at ``batch_size x batches x k`` regardless of
how easy the problem is, while the primitive adapts.
"""

from __future__ import annotations

import numpy as np

from repro.core import BatchingComparison, ConfigurationSelector, \
    MatrixCostSource, SelectorOptions
from repro.experiments import format_table

from _common import easy_tpcd_pair, pair_matrix

TRIALS = 15


def test_sec2_batching_vs_primitive(benchmark):
    setup, worse, better = easy_tpcd_pair()
    matrix = pair_matrix(setup, worse, better)
    tids = setup.workload.template_ids
    best = int(np.argmin(matrix.sum(axis=0)))

    def eval_batching(batch_size, batches):
        correct, calls = 0, []
        for trial in range(TRIALS):
            source = MatrixCostSource(matrix)
            result = BatchingComparison(
                source, batch_size=batch_size, batches=batches,
                rng=np.random.default_rng(trial),
            ).run()
            correct += result.best_index == best
            calls.append(result.optimizer_calls)
        return correct / TRIALS, float(np.mean(calls))

    def eval_primitive():
        correct, calls = 0, []
        for trial in range(TRIALS):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, tids,
                SelectorOptions(alpha=0.9, consecutive=5,
                                reeval_every=4),
                rng=np.random.default_rng(trial),
            ).run()
            correct += result.best_index == best
            calls.append(result.optimizer_calls)
        return correct / TRIALS, float(np.mean(calls))

    rows = []
    acc_p, calls_p = eval_primitive()
    rows.append(["primitive (Delta + strat., alpha=90%)",
                 f"{acc_p:.0%}", f"{calls_p:.0f}"])
    for batch_size, batches in ((100, 5), (500, 10), (1000, 10)):
        acc, calls = eval_batching(batch_size, batches)
        rows.append([
            f"batching (B={batch_size}, b={batches})",
            f"{acc:.0%}", f"{calls:.0f}",
        ])

    print()
    print(format_table(
        ["method", "true Pr(CS)", "mean optimizer calls"],
        rows,
        title="Section 2 — batch-means selection vs the primitive "
              f"(easy pair, {TRIALS} trials)",
    ))
    print("paper: batching's measurement demand nullifies the "
          "efficiency gain of sampling.")

    # The primitive must be at least several times cheaper than the
    # literature-typical batching configuration.
    assert calls_p * 3 < float(rows[-1][2])

    benchmark.pedantic(eval_primitive, rounds=1, iterations=1)
