"""Section 7.3 — tuning quality of cost-based workload compression [20].

Paper experiment: a 2K-query TPC-D workload; compressing with X = 20%
"will capture queries corresponding to only few of the TPC-D query
templates.  Consequently, tuning this compressed workload fails to
yield several design structures beneficial for the remaining
templates...  the improvement (over the entire workload) resulting from
tuning each [of 5 equal-size random] sample[s] was more than twice the
improvement resulting from tuning the compressed workload."

We run exactly that protocol: compress by cost at X = 20%, tune the
compressed workload, tune 5 random samples of the same size, and
compare full-workload improvements.
"""

from __future__ import annotations

import numpy as np

from repro.compression import compress_by_cost, compress_random
from repro.experiments import format_table, tpcd_setup
from repro.physical import Configuration
from repro.tuner import GreedyTuner, evaluate_configuration

N_QUERIES = 700          # scaled from the paper's 2K for bench runtime
RANDOM_SAMPLES = 5
X = 0.20


def test_sec73_compression_quality(benchmark):
    setup = tpcd_setup(n_queries=N_QUERIES, k=2, seed=12)
    workload = setup.workload
    optimizer = setup.optimizer
    empty = Configuration(name="current")
    current_costs = workload.cost_vector(optimizer, empty)

    compressed = compress_by_cost(current_costs, X)
    kept_templates = len(
        np.unique(workload.template_ids[compressed.indices])
    )
    total_templates = workload.template_count

    tuner = GreedyTuner(optimizer, max_structures=6)
    comp_result = tuner.tune(
        [workload.queries[i] for i in compressed.indices],
        weights=compressed.weights,
    )
    comp_quality = evaluate_configuration(
        workload, optimizer, comp_result.configuration
    )

    random_improvements = []
    for s in range(RANDOM_SAMPLES):
        rng = np.random.default_rng(100 + s)
        sample = compress_random(workload.size, compressed.size, rng)
        result = tuner.tune(
            [workload.queries[i] for i in sample.indices],
            weights=sample.weights,
        )
        quality = evaluate_configuration(
            workload, optimizer, result.configuration
        )
        random_improvements.append(quality.improvement)

    mean_random = float(np.mean(random_improvements))

    print()
    print(format_table(
        ["training workload", "size", "templates covered",
         "full-workload improvement"],
        [
            [f"by-cost compressed (X={X:.0%})", compressed.size,
             f"{kept_templates}/{total_templates}",
             f"{comp_quality.improvement:.1%}"],
            [f"random samples (mean of {RANDOM_SAMPLES})",
             compressed.size, "-", f"{mean_random:.1%}"],
        ],
        title=f"Section 7.3 — tuning quality, TPC-D {N_QUERIES}-query "
              "workload",
    ))
    print("paper: random-sample tuning improved the full workload more "
          "than twice as much as tuning the [20]-compressed workload.")

    # The published failure mode: compression covers few templates and
    # random samples tune at least as well (typically far better).
    assert kept_templates < total_templates
    assert mean_random >= comp_quality.improvement

    benchmark.pedantic(
        lambda: compress_by_cost(current_costs, X),
        rounds=10,
        iterations=1,
    )
