"""Shared benchmark configuration.

Every benchmark prints the paper-style rows/series it reproduces and
registers one representative operation with pytest-benchmark.  Scale
knobs (all overridable via environment variables):

=====================  =======  ==========================================
variable               default  meaning
=====================  =======  ==========================================
``REPRO_MC_TRIALS``    200      Monte Carlo repetitions per point (the
                                paper uses 5000)
``REPRO_WL_SIZE``      2000     workload size for the figure benches (the
                                paper uses ~13K TPC-D / ~6K CRM)
``REPRO_TABLE_K``      50       largest k for the Table 2/3 benches
                                (paper: 50/100/500)
``REPRO_TABLE_TRIALS`` 30       trials per k for Table 2/3
=====================  =======  ==========================================
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.experiments import ExperimentSetup, crm_setup, find_pair, \
    tpcd_setup

MC_TRIALS = int(os.environ.get("REPRO_MC_TRIALS", "200"))
WL_SIZE = int(os.environ.get("REPRO_WL_SIZE", "2000"))
TABLE_K = int(os.environ.get("REPRO_TABLE_K", "50"))
TABLE_TRIALS = int(os.environ.get("REPRO_TABLE_TRIALS", "30"))

#: Budgets (in optimizer calls) for the figure curves.
FIGURE_BUDGETS = (60, 100, 160, 240, 400)


def easy_tpcd_pair() -> Tuple[ExperimentSetup, int, int]:
    """Figure 1 setup: ~7% apart, low structural overlap (views vs not)."""
    setup = tpcd_setup(n_queries=WL_SIZE, k=12, seed=0)
    worse, better = find_pair(setup, 0.07, overlap_below=0.5)
    return setup, worse, better


def hard_tpcd_pair() -> Tuple[ExperimentSetup, int, int]:
    """Figure 3 setup: <= 2% apart, both index-only (high covariance)."""
    setup = tpcd_setup(n_queries=WL_SIZE, k=16, seed=1, index_only=True)
    try:
        worse, better = find_pair(setup, 0.02, tolerance=0.9,
                                  overlap_above=0.15)
    except LookupError:
        worse, better = find_pair(setup, 0.02, tolerance=0.95)
    return setup, worse, better


def crm_pair() -> Tuple[ExperimentSetup, int, int]:
    """Figure 4 setup: < 1% apart, little structural overlap."""
    setup = crm_setup(n_queries=WL_SIZE, k=16, seed=2)
    try:
        worse, better = find_pair(setup, 0.01, tolerance=0.95,
                                  overlap_below=0.5)
    except LookupError:
        worse, better = find_pair(setup, 0.01, tolerance=0.99)
    return setup, worse, better


def pair_matrix(
    setup: ExperimentSetup, worse: int, better: int
) -> np.ndarray:
    """The two-configuration cost matrix of a pair experiment."""
    return setup.matrix[:, [worse, better]]


def describe_pair(setup: ExperimentSetup, worse: int, better: int) -> str:
    totals = setup.true_totals
    rel = (totals[worse] - totals[better]) / totals[worse] * 100
    overlap = setup.configurations[worse].overlap_fraction(
        setup.configurations[better]
    )
    return (
        f"N={setup.workload.size}, cost diff={rel:.1f}%, "
        f"structural overlap={overlap:.2f}, "
        f"templates={setup.workload.template_count}"
    )
