"""Section 7.3 — clustering compression [5] vs a Delta sample.

Paper experiment: "we measured difference in improvement when tuning a
Delta-sample and a compressed workload of the same size for a TPC-D
workload; in this experiment, both approaches performed comparably.
Regarding scalability, [5] requires up to O(|WL|^2) complex
distance-computations as a preprocessing step...  In contrast, the
overhead for executing the Algorithms 1 and 2 is negligible, as all
necessary counters and measurements can be maintained incrementally at
constant cost."

We reproduce both halves: tuning quality parity at equal training size,
and the preprocessing-operation gap.
"""

from __future__ import annotations

import numpy as np

from repro.compression import (
    compress_by_clustering,
    compress_random,
    pairwise_distance_count,
)
from repro.experiments import format_table, tpcd_setup
from repro.physical import Configuration
from repro.tuner import GreedyTuner, evaluate_configuration

N_QUERIES = 700
TRAIN_SIZE = 60


def test_sec73_clustering_vs_delta_sample(benchmark):
    setup = tpcd_setup(n_queries=N_QUERIES, k=2, seed=13)
    workload = setup.workload
    optimizer = setup.optimizer
    current_costs = workload.cost_vector(
        optimizer, Configuration(name="current")
    )

    clustered = compress_by_clustering(
        current_costs, workload.template_ids, TRAIN_SIZE,
        exhaustive=True,
    )
    delta_sample = compress_random(
        workload.size, clustered.size, np.random.default_rng(55)
    )

    tuner = GreedyTuner(optimizer, max_structures=6)
    improvements = {}
    for name, cw in (("clustering [5]", clustered),
                     ("delta sample", delta_sample)):
        result = tuner.tune(
            [workload.queries[i] for i in cw.indices],
            weights=cw.weights,
        )
        quality = evaluate_configuration(
            workload, optimizer, result.configuration
        )
        improvements[name] = quality.improvement

    quadratic = pairwise_distance_count(workload.size)
    print()
    print(format_table(
        ["method", "training size", "full-workload improvement",
         "preprocessing ops"],
        [
            ["clustering [5]", clustered.size,
             f"{improvements['clustering [5]']:.1%}",
             f"{clustered.preprocessing_operations:,} "
             f"(worst case {quadratic:,})"],
            ["delta sample", delta_sample.size,
             f"{improvements['delta sample']:.1%}",
             "O(1) per sampled query"],
        ],
        title=f"Section 7.3 — clustering vs Delta sample, TPC-D "
              f"{N_QUERIES}-query workload",
    ))
    print("paper: both approaches performed comparably on quality; the "
          "difference is the preprocessing scalability.")

    a = improvements["clustering [5]"]
    b = improvements["delta sample"]
    assert abs(a - b) <= 0.25  # comparable quality

    benchmark.pedantic(
        lambda: compress_by_clustering(
            current_costs, workload.template_ids, TRAIN_SIZE
        ),
        rounds=10,
        iterations=1,
    )
