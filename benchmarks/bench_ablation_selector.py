"""Ablations of the selection procedure's design choices.

DESIGN.md calls out four load-bearing design choices beyond the core
sampling math; this bench measures each one's contribution on the
TPC-D multi-configuration problem:

1. **configuration elimination** (§5 / §7.2, drop at
   Pr(CS_{l,j}) > .995) — saves optimizer calls at equal accuracy;
2. **the oscillation guard** (§7.2, require Pr(CS) > alpha for 10
   consecutive samples) — trades extra samples for calibration;
3. **Delta vs Independent sampling** (§4.2) — the variance reduction
   from shared samples;
4. **overhead-aware allocation** (§5.2 closing remark) — weighing
   variance reduction against per-template optimization cost.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConfigurationSelector, MatrixCostSource, \
    SelectorOptions
from repro.experiments import format_table, tpcd_setup

from _common import WL_SIZE

TRIALS = 15
K = 8


def _run(setup, options, seed, overheads=None):
    source = MatrixCostSource(setup.matrix)
    selector = ConfigurationSelector(
        source, setup.workload.template_ids, options,
        rng=np.random.default_rng(seed),
        template_overheads=overheads,
    )
    return source, selector.run()


def _evaluate(setup, options, overheads=None, weighted_calls=False):
    totals = setup.true_totals
    best = int(np.argmin(totals))
    correct = 0
    calls = []
    for trial in range(TRIALS):
        _source, result = _run(setup, options, trial, overheads)
        correct += result.best_index == best
        calls.append(result.optimizer_calls)
    return correct / TRIALS, float(np.mean(calls))


def test_ablation_selector(benchmark):
    setup = tpcd_setup(n_queries=WL_SIZE, k=K, seed=0)
    base = dict(alpha=0.9, reeval_every=4)

    rows = []

    # 1. elimination
    for eliminate in (True, False):
        acc, calls = _evaluate(
            setup, SelectorOptions(eliminate=eliminate, **base)
        )
        rows.append([
            f"elimination={'on' if eliminate else 'off'}",
            f"{acc:.0%}", f"{calls:.0f}",
        ])

    # 2. oscillation guard
    for consecutive in (10, 1):
        acc, calls = _evaluate(
            setup, SelectorOptions(consecutive=consecutive, **base)
        )
        rows.append([
            f"consecutive guard={consecutive}",
            f"{acc:.0%}", f"{calls:.0f}",
        ])

    # 3. sampling scheme
    for scheme in ("delta", "independent"):
        acc, calls = _evaluate(
            setup, SelectorOptions(scheme=scheme, **base)
        )
        rows.append([f"scheme={scheme}", f"{acc:.0%}", f"{calls:.0f}"])

    # 4. overhead-aware allocation (calls weighted by per-template
    #    optimization overhead: multi-join templates cost more).
    overheads = setup.workload.template_overheads()
    for aware in (False, True):
        acc, calls = _evaluate(
            setup, SelectorOptions(**base),
            overheads=overheads if aware else None,
        )
        rows.append([
            f"overhead-aware={'on' if aware else 'off'}",
            f"{acc:.0%}", f"{calls:.0f}",
        ])

    print()
    print(format_table(
        ["variant", "true Pr(CS)", "mean optimizer calls"],
        rows,
        title=f"Selector ablations (k={K}, N={WL_SIZE}, alpha=90%, "
              f"{TRIALS} trials)",
    ))

    # Elimination must not lose accuracy while saving calls.
    acc_on = float(rows[0][1].rstrip("%"))
    acc_off = float(rows[1][1].rstrip("%"))
    calls_on = float(rows[0][2])
    calls_off = float(rows[1][2])
    assert acc_on >= acc_off - 20
    assert calls_on <= calls_off * 1.05

    def one_run():
        return _run(setup, SelectorOptions(**base), 0)

    benchmark.pedantic(one_run, rounds=3, iterations=1)
