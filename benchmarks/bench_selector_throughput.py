"""Selector throughput: batched draw-ahead vs the serial schedule.

Measures the tentpole of the batched sampling engine on two cost
sources and emits a machine-readable ``BENCH_selector.json``:

1. **MatrixCostSource selection** (k=8, N>=5000 unless ``--quick``) —
   one fixed-budget selection run with ``batch_rounds=1`` (the serial
   schedule, bit-identical to the historical draw-by-draw loop) versus
   the round-level draw-ahead.  Reports wall time, optimizer calls,
   evaluated cells/second, per-phase times and the speedup; asserts
   (full mode) the speedup is >= ``--min-speedup`` and the batched call
   count stays within the configured tolerance of the serial schedule.
   The same scenario is run a third time with the reference per-cut
   split scoring (``split_scoring="reference"``): the two batched runs
   take identical decisions, so their split + plan phase times isolate
   the incremental/vectorized kernels (``phases_speedup`` block;
   asserted >= ``--min-kernel-speedup`` in full mode).  A ``leaders``
   block records both sides' final leader and Pr(CS): on a
   budget-bound run a leader disagreement within the unreached
   confidence level is a statistical tie, and the benchmark asserts it
   stays within that tie.
2. **OptimizerCostSource selection** — the same comparison over live
   what-if calls on a generated TPC-D workload (plan-search bound, so
   the batching win is smaller; reported, not asserted).

A third section replays one case of the committed golden fixture
(``tests/data/selector_golden.json``) at ``batch_rounds=1`` and records
whether the result is still bit-identical to the pre-batching selector.

Usage::

    PYTHONPATH=src python benchmarks/bench_selector_throughput.py
    PYTHONPATH=src python benchmarks/bench_selector_throughput.py \
        --quick --out BENCH_selector.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.selector import ConfigurationSelector, SelectorOptions
from repro.core.sources import MatrixCostSource, OptimizerCostSource
from repro.experiments.profiling import PhaseTimer

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "data", "selector_golden.json",
)


def bench_matrix(
    n: int, t: int, k: int, seed: int = 123, tie: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """A template-clustered cost matrix, optionally with a planted tie.

    Mirrors the equivalence-test generator (heavy-tailed template
    scales, correlated configurations) at benchmark scale.  With
    ``tie=True`` the two cheapest configurations are rescaled to equal
    true totals — the paper's hard regime (Figure 3), where
    ``Pr(CS)`` cannot clear a high ``alpha`` and the run is genuinely
    budget-bound.  (A run that clears ``alpha`` switches to serial
    re-checks to confirm termination, which is correct behavior but
    the wrong scenario for measuring draw-ahead throughput.)
    """
    rng = np.random.default_rng(seed)
    template_ids = np.sort(rng.integers(0, t, size=n))
    base = rng.lognormal(3.0, 1.0, size=t)
    factor = 1.0 + 0.12 * rng.standard_normal((t, k))
    noise = rng.lognormal(0.0, 0.15, size=(n, k))
    matrix = base[template_ids][:, None] * factor[template_ids] * noise
    if tie:
        totals = matrix.sum(axis=0)
        first, second = np.argsort(totals)[:2]
        matrix[:, second] *= totals[first] / totals[second]
    return matrix, template_ids


def _run_selection(
    source, template_ids, options: SelectorOptions, seed: int
) -> Dict:
    """One timed selection run -> wall time, calls, phases, outcome."""
    timer = PhaseTimer()
    selector = ConfigurationSelector(
        source, template_ids, options,
        rng=np.random.default_rng(seed), timer=timer,
    )
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = selector.run()
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    calls = int(result.optimizer_calls)
    return {
        "wall_seconds": wall,
        "optimizer_calls": calls,
        "cells_per_second": calls / wall if wall > 0 else 0.0,
        "best_index": int(result.best_index),
        "prcs": float(result.prcs),
        "terminated_by": result.terminated_by,
        "phases": timer.as_dict(),
    }


def _split_plan(run: Dict) -> float:
    return float(
        run["phases"].get("split", 0.0) + run["phases"].get("plan", 0.0)
    )


def _compare(
    make_source,
    template_ids,
    base_options: SelectorOptions,
    batch_rounds: int,
    tolerance: float,
    seed: int,
    kernel_ab: bool = False,
) -> Dict:
    """Serial (batch_rounds=1) vs batched runs of the same scenario."""
    serial = _run_selection(
        make_source(), template_ids, base_options, seed
    )
    from dataclasses import replace

    batched_options = replace(
        base_options,
        batch_rounds=batch_rounds,
        batch_call_tolerance=tolerance,
    )
    batched = _run_selection(
        make_source(), template_ids, batched_options, seed
    )
    speedup = (
        serial["wall_seconds"] / batched["wall_seconds"]
        if batched["wall_seconds"] > 0 else 0.0
    )
    calls_ratio = (
        batched["optimizer_calls"] / serial["optimizer_calls"]
        if serial["optimizer_calls"] else 1.0
    )
    # On a budget-bound run (terminated_by != "alpha") neither side has
    # reached the confidence target, so a best_index disagreement is a
    # statistical tie between leaders the run could not separate — both
    # Pr(CS) values sit below alpha — not a correctness divergence.
    # (The serial and batched engines use different-but-equivalent
    # estimator updates — streaming buffers vs Welford merges — whose
    # last-ULP rounding picks different members of the planted tie.)
    agree = serial["best_index"] == batched["best_index"]
    leaders = {
        "serial_best": serial["best_index"],
        "batched_best": batched["best_index"],
        "serial_prcs": serial["prcs"],
        "batched_prcs": batched["prcs"],
        "alpha": float(base_options.alpha),
        "agree": agree,
        "within_confidence_tie": agree or (
            serial["terminated_by"] != "alpha"
            and batched["terminated_by"] != "alpha"
            and serial["prcs"] < base_options.alpha
            and batched["prcs"] < base_options.alpha
        ),
    }
    report = {
        "serial": serial,
        "batched": dict(batched, batch_rounds=batch_rounds),
        "speedup": speedup,
        "calls_ratio": calls_ratio,
        "call_tolerance": tolerance,
        "leaders": leaders,
    }
    if kernel_ab:
        # Same batched trajectory with the historical per-cut split
        # scoring: decisions are parity-identical, so the split + plan
        # phase-time ratio isolates the kernel change.
        reference = _run_selection(
            make_source(), template_ids,
            replace(batched_options, split_scoring="reference"), seed,
        )
        ref_sp = _split_plan(reference)
        inc_sp = _split_plan(batched)
        report["phases_speedup"] = {
            "phases": ["split", "plan"],
            "reference": {
                "split_seconds": reference["phases"].get("split", 0.0),
                "plan_seconds": reference["phases"].get("plan", 0.0),
                "split_plan_seconds": ref_sp,
                "wall_seconds": reference["wall_seconds"],
            },
            "incremental": {
                "split_seconds": batched["phases"].get("split", 0.0),
                "plan_seconds": batched["phases"].get("plan", 0.0),
                "split_plan_seconds": inc_sp,
                "wall_seconds": batched["wall_seconds"],
            },
            "speedup": ref_sp / inc_sp if inc_sp > 0 else 0.0,
            "decisions_match": (
                reference["best_index"] == batched["best_index"]
                and reference["optimizer_calls"]
                == batched["optimizer_calls"]
                and reference["prcs"] == batched["prcs"]
            ),
        }
    return report


def section_matrix(quick: bool, tolerance: float) -> Dict:
    """MatrixCostSource selection: the acceptance-criterion regime."""
    n, t, k = (1200, 24, 8) if quick else (5000, 40, 8)
    matrix, template_ids = bench_matrix(n, t, k, tie=True)
    # A fixed budget keeps the measured work identical on both sides;
    # the planted tie keeps Pr(CS) below alpha so the selector samples
    # to the budget instead of entering the serial confirmation tail.
    max_calls = (n // 2) * k
    options = SelectorOptions(
        alpha=0.999,
        scheme="delta",
        stratify="progressive",
        n_min=16,
        consecutive=10**9,
        eliminate=False,
        max_calls=max_calls,
        reeval_every=2,
    )
    report = _compare(
        lambda: MatrixCostSource(matrix),
        template_ids, options,
        batch_rounds=64, tolerance=tolerance, seed=7,
        kernel_ab=True,
    )
    report.update(
        n_queries=n, k=k, scheme="delta", stratify="progressive",
        max_calls=max_calls,
    )
    return report


def section_optimizer(quick: bool, tolerance: float) -> Dict:
    """OptimizerCostSource selection over live what-if calls."""
    from repro.optimizer import WhatIfOptimizer
    from repro.physical import build_pool, enumerate_configurations
    from repro.workload.tpcd import tpcd_generator, tpcd_schema

    size, k = (150, 8) if quick else (500, 8)
    schema = tpcd_schema(scale_factor=0.1)
    workload = tpcd_generator(schema=schema).generate(
        size, np.random.default_rng(0)
    )
    pool = build_pool(
        workload.queries[: min(300, size)], WhatIfOptimizer(schema)
    )
    configs = enumerate_configurations(
        pool, k, np.random.default_rng(0)
    )
    max_calls = (size // 2) * k
    options = SelectorOptions(
        alpha=0.999,
        scheme="delta",
        stratify="progressive",
        n_min=8,
        consecutive=10**9,
        eliminate=False,
        max_calls=max_calls,
        reeval_every=2,
    )

    def make_source():
        # A fresh optimizer per run: both sides pay cold caches.
        return OptimizerCostSource(
            workload, configs, WhatIfOptimizer(schema)
        )

    report = _compare(
        make_source, workload.template_ids, options,
        batch_rounds=64, tolerance=tolerance, seed=7,
    )
    report.update(
        n_queries=size, k=k, scheme="delta", stratify="progressive",
        max_calls=max_calls,
    )
    return report


def section_golden() -> Dict:
    """Replay one golden case at batch_rounds=1; must be bit-identical."""
    case_key = "delta/progressive/seed0/budgetNone"
    try:
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)[case_key]
    except (OSError, KeyError):
        return {"case": case_key, "checked": False}
    matrix, template_ids = bench_matrix(400, 16, 5, seed=123)
    options = SelectorOptions(
        alpha=0.9, scheme="delta", stratify="progressive",
        n_min=8, consecutive=3, eliminate=True, reeval_every=2,
    )
    result = ConfigurationSelector(
        MatrixCostSource(matrix), template_ids, options,
        rng=np.random.default_rng(0),
    ).run()
    identical = (
        int(result.best_index) == golden["best_index"]
        and float(result.prcs).hex() == golden["prcs"]
        and int(result.optimizer_calls) == golden["optimizer_calls"]
        and [[int(c), float(p).hex()] for c, p in result.history]
        == golden["history"]
    )
    return {"case": case_key, "checked": True, "bit_identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, no speedup assertion (CI "
                             "smoke; still emits the full schema)")
    parser.add_argument("--out", default="BENCH_selector.json",
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required MatrixCostSource speedup "
                             "(full mode only)")
    parser.add_argument("--min-kernel-speedup", type=float, default=3.0,
                        help="required split+plan reduction of the "
                             "incremental split kernel vs the reference "
                             "per-cut scoring (full mode only)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="batch_call_tolerance for the batched runs")
    parser.add_argument("--skip-optimizer", action="store_true",
                        help="skip the live-optimizer section")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "selector_throughput",
        "quick": bool(args.quick),
        "matrix_selection": section_matrix(args.quick, args.tolerance),
        "golden_check": section_golden(),
    }
    if not args.skip_optimizer:
        report["optimizer_selection"] = section_optimizer(
            args.quick, args.tolerance
        )

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, default=float)

    m = report["matrix_selection"]
    print(f"matrix selection  : N={m['n_queries']} k={m['k']} "
          f"budget={m['max_calls']} calls")
    print(f"  serial          : {m['serial']['wall_seconds']:.2f}s "
          f"({m['serial']['cells_per_second']:,.0f} cells/s)")
    print(f"  batched         : {m['batched']['wall_seconds']:.2f}s "
          f"({m['batched']['cells_per_second']:,.0f} cells/s)")
    print(f"  speedup         : {m['speedup']:.2f}x "
          f"(calls ratio {m['calls_ratio']:.3f})")
    ld = m["leaders"]
    print(f"  leaders         : serial={ld['serial_best']} "
          f"(PrCS {ld['serial_prcs']:.3f}) "
          f"batched={ld['batched_best']} "
          f"(PrCS {ld['batched_prcs']:.3f}) "
          f"alpha={ld['alpha']} "
          f"within_confidence_tie={ld['within_confidence_tie']}")
    ps = m.get("phases_speedup")
    if ps:
        print(f"  split+plan      : reference "
              f"{ps['reference']['split_plan_seconds']:.2f}s -> "
              f"incremental "
              f"{ps['incremental']['split_plan_seconds']:.2f}s "
              f"({ps['speedup']:.2f}x, decisions_match="
              f"{ps['decisions_match']})")
    if "optimizer_selection" in report:
        o = report["optimizer_selection"]
        print(f"optimizer selection: N={o['n_queries']} k={o['k']} -> "
              f"speedup {o['speedup']:.2f}x "
              f"(calls ratio {o['calls_ratio']:.3f})")
    g = report["golden_check"]
    if g.get("checked"):
        print(f"golden replay     : bit_identical={g['bit_identical']}")
    print(f"wrote {args.out}")

    failures = []
    if g.get("checked") and not g["bit_identical"]:
        failures.append("batch_rounds=1 diverged from the golden fixture")
    if abs(m["calls_ratio"] - 1.0) > args.tolerance:
        failures.append(
            f"batched calls ratio {m['calls_ratio']:.3f} outside "
            f"+/-{args.tolerance:.0%} of the serial schedule"
        )
    if not args.quick and m["speedup"] < args.min_speedup:
        failures.append(
            f"matrix-selection speedup {m['speedup']:.2f}x below "
            f"{args.min_speedup:.1f}x"
        )
    if not m["leaders"]["within_confidence_tie"]:
        failures.append(
            "serial and batched leaders disagree beyond the reported "
            f"confidence tie (serial={m['leaders']['serial_best']} "
            f"PrCS {m['leaders']['serial_prcs']:.3f}, "
            f"batched={m['leaders']['batched_best']} "
            f"PrCS {m['leaders']['batched_prcs']:.3f}, "
            f"alpha={m['leaders']['alpha']})"
        )
    ps = m.get("phases_speedup")
    if ps and not ps["decisions_match"]:
        failures.append(
            "reference split scoring diverged from the incremental "
            "kernel (decisions must be parity-identical)"
        )
    if ps and not args.quick and ps["speedup"] < args.min_kernel_speedup:
        failures.append(
            f"split+plan reduction {ps['speedup']:.2f}x below "
            f"{args.min_kernel_speedup:.1f}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
