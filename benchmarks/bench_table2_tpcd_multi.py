"""Table 2 — multiple-configuration selection on the TPC-D workload.

Paper protocol (§7.2): configurations collected from a commercial
design tool, k in {50, 100, 500}; run Algorithm 1 with alpha = 90%,
delta = 0, Delta Sampling + progressive stratification (with the
oscillation guard of 10 consecutive samples and elimination of
configurations at Pr(CS_{l,j}) > .995).  Compare against two
alternative allocations of the *same number of sampled queries*:
uniform sampling without stratification, and equal allocation per
stratum.  5000 repetitions; report the true Pr(CS) and the worst-case
cost regret of the selected configuration ("Max Delta").

Paper results (TPC-D):

    method          metric        k=50    k=100   k=500
    Delta-Sampling  true Pr(CS)   91.7%   88.2%   88.3%
                    Max Delta     0.5%    1.5%    1.6%
    No Strat.       true Pr(CS)   39.1%   28.2%   12.0%
                    Max Delta     8.8%    9.9%    9.8%
    Equal Alloc.    true Pr(CS)   42.5%   28.6%   12.8%
                    Max Delta     7.7%    9.0%    8.6%

Shape to reproduce: the primitive tracks alpha across k while the
baselines collapse as k grows, with far larger worst-case regret.
Scaled-down defaults: k = REPRO_TABLE_K (50), trials =
REPRO_TABLE_TRIALS (30), N = REPRO_WL_SIZE (2000).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, multi_config_table, tpcd_setup

from _common import TABLE_K, TABLE_TRIALS, WL_SIZE

K_VALUES = tuple(
    k for k in (max(10, TABLE_K // 5), TABLE_K) if k <= TABLE_K
)


def test_table2_tpcd_multi_config(benchmark):
    rows_out = []
    results = {}
    for k in K_VALUES:
        setup = tpcd_setup(n_queries=WL_SIZE, k=k, seed=5)
        rows = multi_config_table(
            setup.matrix, setup.workload.template_ids,
            alpha=0.9, delta=0.0, trials=TABLE_TRIALS, seed=7,
        )
        results[k] = rows
        for row in rows:
            rows_out.append([
                row.method, f"k={k}",
                f"{row.true_prcs:.1%}",
                f"{row.max_delta_pct:.2f}%",
                f"{row.mean_calls:.0f}",
                f"{row.mean_queries:.0f}",
            ])

    print()
    print(format_table(
        ["method", "k", "True Pr(CS)", "Max Delta", "mean calls",
         "mean queries"],
        rows_out,
        title=f"Table 2 — TPC-D workload (alpha=90%, delta=0, "
              f"{TABLE_TRIALS} trials; paper uses 5000)",
    ))

    for k, rows in results.items():
        delta_row, nostrat_row, equal_row = rows
        # The primitive must beat the naive allocations.
        assert delta_row.true_prcs >= nostrat_row.true_prcs
        # And its worst-case regret stays small.
        assert delta_row.max_delta_pct <= \
            max(2.0, nostrat_row.max_delta_pct)

    setup = tpcd_setup(n_queries=WL_SIZE, k=K_VALUES[0], seed=5)

    def one_table():
        return multi_config_table(
            setup.matrix, setup.workload.template_ids,
            alpha=0.9, trials=2, seed=1,
        )

    benchmark.pedantic(one_table, rounds=1, iterations=1)
