"""Section 6 (text) — sample sizes required by the modified Cochran rule.

Paper: "for the highly skewed (query costs vary by multiple degrees of
magnitude) 13K query TPC-D workload described in Section 7, satisfying
equation 9 required about a 4% sample; for a 131K query TPC-D workload,
a samples of less than 0.6% of the queries was needed."

Setup mirrors a realistic mid-tuning comparison: every candidate
configuration extends a substantial shared *base* (the broadly useful
indexes a tuning session has already committed to), so the per-query
cost intervals [ideal-config cost, base-config cost] — the §6.1
derivation — are tight.  From the intervals we bound skew and variance
with the §6.2 DPs and apply ``n > 28 + 25*G1^2``.

Reproduced shape: the certified minimum sample size is roughly
independent of N, so the required *fraction* shrinks as the workload
grows (the paper's 4% -> 0.6% over a 10x size increase).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import CostBounder, validate_sample_size
from repro.experiments import format_table
from repro.optimizer import WhatIfOptimizer
from repro.physical import Configuration, base_configuration, build_pool, \
    enumerate_configurations
from repro.workload import generate_tpcd_workload, tpcd_schema

#: Two workload sizes a 5x ratio apart (the paper used 13K and 131K;
#: override the pair by editing here — the shape is size-independent).
SIZES = (1_000, 5_000)


def _intervals_for(n_queries: int):
    schema = tpcd_schema(scale_factor=0.1)
    workload = generate_tpcd_workload(n_queries, seed=9, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(workload.queries[:200], optimizer,
                      include_views=False)
    # Mid-tuning: commit the broadly useful indexes as the shared base;
    # candidates differ only in a few extra structures.
    common = sorted(
        pool.index_weights, key=pool.index_weights.get, reverse=True
    )[:15]
    shared = Configuration(common, name="shared")
    configs = enumerate_configurations(
        pool, 6, np.random.default_rng(9), base=shared, index_only=True,
        min_indexes=1, max_indexes=4,
    )
    base = base_configuration(configs)
    union = configs[0]
    for cfg in configs[1:]:
        union = union.union(cfg)
    bounder = CostBounder(optimizer, workload, base, union,
                          index_only=True)
    return bounder.universal_intervals(), workload


def test_sec6_cochran_required_fraction(benchmark):
    rows = []
    fractions = {}
    for n in SIZES:
        intervals, workload = _intervals_for(n)
        rho = max(0.5, float(np.median(intervals.highs)) / 500)
        validation = validate_sample_size(
            intervals.lows, intervals.highs, rho=rho,
            max_states=100_000_000,
        )
        assert validation.min_sample is not None, (
            "the skew bound must be finite for this workload"
        )
        fractions[n] = validation.required_fraction
        rows.append([
            f"{n:,}",
            f"{np.median(intervals.widths()):.1f}",
            f"{validation.g1_max:.2f}",
            f"{validation.min_sample:,}",
            f"{validation.required_fraction:.2%}",
            f"{intervals.optimizer_calls:,}",
        ])

    print()
    print(format_table(
        ["workload size", "median width", "G1_max (bound)",
         "min sample", "required fraction", "bounding calls"],
        rows,
        title="Section 6 — modified Cochran rule "
              "(n > 28 + 25*G1^2) on TPC-D cost intervals",
    ))
    print("paper: ~4% of a 13K workload vs <0.6% of a 131K workload — "
          "the required fraction shrinks with workload size.")

    assert fractions[SIZES[1]] < fractions[SIZES[0]]

    intervals, _workload = _intervals_for(SIZES[0])
    benchmark.pedantic(
        validate_sample_size,
        args=(intervals.lows, intervals.highs),
        kwargs={"rho": 5.0, "max_states": 100_000_000},
        rounds=3,
        iterations=1,
    )
