"""Figure 4 — Monte Carlo simulation of Pr(CS), CRM workload.

Paper setup: the real-life CRM database (500+ tables), traced workload
of ~6K statements, two configurations that are difficult to compare
(cost difference < 1%) with *little* overlap in their physical design
structures.

Paper findings:
* the advantage of Delta Sampling is *less pronounced* (low structural
  overlap -> lower covariance between the cost distributions);
* the workload has >120 distinct templates, so estimates of the
  average cost of *all* templates are rarely available and progressive
  stratification engages only occasionally.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import SchemeSpec, format_series, prcs_curve

from _common import MC_TRIALS, crm_pair, describe_pair, pair_matrix

BUDGETS = (100, 200, 400, 800, 1600)

SCHEMES = (
    SchemeSpec("independent", "none"),
    SchemeSpec("delta", "none"),
    SchemeSpec("independent", "progressive"),
    SchemeSpec("delta", "progressive"),
)


def test_fig4_crm_pair_prcs(benchmark):
    setup, worse, better = crm_pair()
    matrix = pair_matrix(setup, worse, better)
    tids = setup.workload.template_ids
    corr = float(np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1])

    series = {}
    for spec in SCHEMES:
        trials = MC_TRIALS if spec.stratify == "none" else \
            max(20, MC_TRIALS // 4)
        series[spec.label] = prcs_curve(
            matrix, tids, spec, BUDGETS, trials=trials, seed=41
        )

    print()
    print(f"Figure 4 — CRM; {describe_pair(setup, worse, better)}; "
          f"cross-config cost correlation={corr:.3f}")
    print(format_series(
        "optimizer calls", list(BUDGETS), series,
        title="Monte Carlo simulation of Pr(CS), CRM pair "
              f"({MC_TRIALS} trials/point)",
    ))

    # The workload must exhibit the paper's >120-template property at
    # full size; our scaled trace still carries a large template count.
    assert setup.workload.template_count > 60

    rng = np.random.default_rng(3)
    from repro.experiments import select_fixed_budget

    benchmark.pedantic(
        select_fixed_budget,
        args=(matrix, tids, SchemeSpec("delta", "none"), BUDGETS[2], rng),
        rounds=5,
        iterations=1,
    )
